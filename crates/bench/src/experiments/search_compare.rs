//! Search-strategy comparison at equal evaluation budgets: SURF (the
//! paper's contribution) vs uniform random sampling, greedy hill climbing,
//! simulated annealing over the full configuration space, and simulated
//! annealing over contraction orders alone (version vector at a canonical
//! configuration per version).

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::stages::lower;
use barracuda::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use surf::{contraction_order_annealing, hill_climb, random_search, simulated_annealing};

#[derive(Clone, Debug)]
pub struct SearchCompareRow {
    pub workload: String,
    pub budget: usize,
    pub surf_us: f64,
    pub random_us: f64,
    pub hill_us: f64,
    pub anneal_us: f64,
    /// Annealing restricted to the contraction-order axis: each statement's
    /// version is a mixed-radix digit and every version is timed at its
    /// configuration 0, so this isolates how much of the tuning win comes
    /// from picking the right factorization vs the right loop nest.
    pub order_anneal_us: f64,
}

pub fn run_workload(w: &Workload, arch: &gpusim::GpuArch, params: TuneParams) -> SearchCompareRow {
    let tuner = WorkloadTuner::build(w);
    let tuned = tuner.autotune(arch, params).unwrap();
    let budget = tuned.search.n_evals;
    let pool = tuner.pool(params.pool_cap, params.seed);

    let eval = |id: u128| tuner.gpu_seconds(id, arch);
    let rnd = random_search(&pool, eval, budget, params.seed);
    // Local searches start from a deterministic pool element.
    let start = pool[pool.len() / 2];
    let mut nrng = StdRng::seed_from_u64(params.seed);
    let hc = hill_climb(
        start,
        |id, _| tuner.neighbor(id, &mut nrng),
        eval,
        budget,
        params.seed,
    );
    let mut nrng2 = StdRng::seed_from_u64(params.seed ^ 0xA5);
    let sa = simulated_annealing(
        start,
        |id, _| tuner.neighbor(id, &mut nrng2),
        eval,
        budget,
        0.3,
        params.seed,
    );

    // Order-only annealing: one mixed-radix digit per statement selecting a
    // version, each timed at its configuration 0. A small order-id decodes
    // to a digit vector (little-endian, matching contraction_order_annealing)
    // which maps to a flat joint id via each version's first configuration.
    let radices: Vec<usize> = tuner
        .statements
        .iter()
        .map(|st| st.variants.len())
        .collect();
    let order_eval = |order_id: u128| {
        let mut rest = order_id;
        let locals: Vec<u128> = tuner
            .statements
            .iter()
            .zip(&radices)
            .map(|(st, &r)| {
                let digit = (rest % r as u128) as usize;
                rest /= r as u128;
                st.version_start(digit)
            })
            .collect();
        tuner.gpu_seconds(lower::encode_joint(&tuner.statements, &locals), arch)
    };
    let oa = contraction_order_annealing(&radices, 0, order_eval, budget, 0.3, params.seed);

    SearchCompareRow {
        workload: w.name.clone(),
        budget,
        surf_us: tuned.gpu_seconds * 1e6,
        random_us: rnd.best_y * 1e6,
        hill_us: hc.best_y * 1e6,
        anneal_us: sa.best_y * 1e6,
        order_anneal_us: oa.best_y * 1e6,
    }
}

pub fn run(params: TuneParams) -> Vec<SearchCompareRow> {
    let arch = gpusim::k20();
    vec![
        run_workload(&barracuda::kernels::eqn1(10), &arch, params),
        run_workload(
            &barracuda::kernels::lg3t(
                barracuda::kernels::NEK_ORDER,
                barracuda::kernels::NEK_ELEMENTS,
            ),
            &arch,
            params,
        ),
        run_workload(&barracuda::kernels::nwchem_d2(1, 16), &arch, params),
    ]
}

pub fn render(rows: &[SearchCompareRow]) -> Table {
    let mut t = Table::new(
        "Search strategies at equal budget (best found, us; K20)",
        &[
            "workload",
            "budget",
            "SURF",
            "random",
            "hill-climb",
            "annealing",
            "order-anneal",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.budget.to_string(),
            fmt_f(r.surf_us),
            fmt_f(r.random_us),
            fmt_f(r.hill_us),
            fmt_f(r.anneal_us),
            fmt_f(r.order_anneal_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn all_strategies_produce_finite_results() {
        let w = barracuda::kernels::nwchem_d2(1, 8);
        let r = run_workload(&w, &gpusim::k20(), smoke_params());
        for v in [
            r.surf_us,
            r.random_us,
            r.hill_us,
            r.anneal_us,
            r.order_anneal_us,
        ] {
            assert!(v.is_finite() && v > 0.0);
        }
        // The whole row is deterministic: seeds are fixed and the simulator
        // has no noise, so a rerun reproduces every column bit-for-bit.
        let again = run_workload(&w, &gpusim::k20(), smoke_params());
        assert_eq!(r.order_anneal_us.to_bits(), again.order_anneal_us.to_bits());
        assert_eq!(r.anneal_us.to_bits(), again.anneal_us.to_bits());
        // SURF should be competitive: within 1.5x of the best strategy.
        let best = r.random_us.min(r.hill_us).min(r.anneal_us);
        assert!(r.surf_us <= best * 1.5, "SURF {} vs best {best}", r.surf_us);
    }
}
