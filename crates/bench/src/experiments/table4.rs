//! Table IV: Nekbone and NWChem excerpts — sequential / OpenMP-4 Haswell
//! vs Barracuda (GTX 980).
//!
//! For the NWChem families the paper reports one aggregate number per
//! family; we report the family mean across the nine kernels. NWChem
//! numbers are device-side (the kernels run inside CCSD(T) where `t3`
//! stays resident); Nekbone includes transfers, as in Table III.

use barracuda::cpu::workload_cpu_time;
use barracuda::kernels::{nwchem_family, NWCHEM_TRIP};
use barracuda::nekbone::{model_cpu_gflops, model_gpu_perf_with, NekboneConfig};
use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::TuningSession;
use cpusim::model::CpuModel;

#[derive(Clone, Debug)]
pub struct Table4Row {
    pub name: String,
    pub cpu_1core: f64,
    pub openmp_4core: f64,
    pub barracuda: f64,
}

/// Mean GFlops of an NWChem family under each strategy, on the paper's
/// GTX 980.
pub fn nwchem_row(family: &str, trip: usize, params: TuneParams) -> Table4Row {
    nwchem_row_on(
        &TuningSession::new(),
        &gpusim::gtx980(),
        family,
        trip,
        params,
    )
}

/// [`nwchem_row`] on an explicit architecture (`--backend`).
pub fn nwchem_row_on(
    session: &TuningSession,
    arch: &gpusim::GpuArch,
    family: &str,
    trip: usize,
    params: TuneParams,
) -> Table4Row {
    let model = CpuModel::haswell();
    let mut cpu1 = 0.0;
    let mut cpu4 = 0.0;
    let mut bar = 0.0;
    let workloads = nwchem_family(family, trip);
    for w in &workloads {
        let t1 = workload_cpu_time(w, &model, 1);
        let t4 = workload_cpu_time(w, &model, 4);
        cpu1 += t1.flops as f64 / t1.time_s / 1e9;
        cpu4 += t4.flops as f64 / t4.time_s / 1e9;
        let tuned = session
            .tune_on_arch(&WorkloadTuner::build(w), arch, params)
            .unwrap();
        bar += tuned.gflops_device();
    }
    let n = workloads.len() as f64;
    Table4Row {
        name: format!("NWCHEM {family}"),
        cpu_1core: cpu1 / n,
        openmp_4core: cpu4 / n,
        barracuda: bar / n,
    }
}

pub fn nekbone_row(params: TuneParams) -> Table4Row {
    nekbone_row_on(&TuningSession::new(), &gpusim::gtx980(), params)
}

/// [`nekbone_row`] on an explicit architecture (`--backend`).
pub fn nekbone_row_on(
    session: &TuningSession,
    arch: &gpusim::GpuArch,
    params: TuneParams,
) -> Table4Row {
    let cfg = NekboneConfig::default();
    let perf = model_gpu_perf_with(session, cfg, arch, params).unwrap();
    Table4Row {
        name: "Nekbone".to_string(),
        cpu_1core: model_cpu_gflops(cfg, 1),
        openmp_4core: model_cpu_gflops(cfg, 4),
        barracuda: perf.barracuda_gflops,
    }
}

/// Runs the table with the GPU column on an explicit architecture. One
/// [`TuningSession`] spans all four rows.
pub fn run_on(arch: &gpusim::GpuArch, params: TuneParams) -> Vec<Table4Row> {
    let session = TuningSession::new();
    let mut rows = vec![nekbone_row_on(&session, arch, params)];
    for family in ["s1", "d1", "d2"] {
        rows.push(nwchem_row_on(&session, arch, family, NWCHEM_TRIP, params));
    }
    rows
}

pub fn run(params: TuneParams) -> Vec<Table4Row> {
    run_on(&gpusim::gtx980(), params)
}

pub fn render(rows: &[Table4Row]) -> Table {
    render_for("GTX 980", rows)
}

/// [`render`] with the GPU column's architecture named in the title.
pub fn render_for(arch_name: &str, rows: &[Table4Row]) -> Table {
    let mut t = Table::new(
        format!("Table IV: OpenMP vs Barracuda (GFlops; Barracuda on {arch_name})"),
        &["bench", "1 core", "OpenMP 4 cores", "Barracuda"],
    );
    for r in rows {
        t.row(vec![
            r.name.clone(),
            fmt_f(r.cpu_1core),
            fmt_f(r.openmp_4core),
            fmt_f(r.barracuda),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_nwchem_s1_family() {
        // Small trip count to keep the smoke test fast.
        let row = nwchem_row("s1", 8, smoke_params());
        assert!(row.cpu_1core > 0.0);
        // Memory-bound S1 barely scales with threads (paper: 2.47 -> 2.61).
        assert!(row.openmp_4core < row.cpu_1core * 2.5);
        // The GPU must beat 4-core OpenMP (the paper's headline for Table IV).
        assert!(
            row.barracuda > row.openmp_4core,
            "GPU {} must beat OpenMP {}",
            row.barracuda,
            row.openmp_4core
        );
    }
}
