//! §III claims: OCTOPI generates fifteen versions of Eqn. (1); among the
//! six that perform the same amount of floating-point computation the
//! performance on a GTX 980 varies "by as much as 9 %".

use barracuda::report::{fmt_f, Table};
use barracuda::variant::StatementTuner;
use tcr::mapping::map_program;

#[derive(Clone, Debug)]
pub struct VersionsResult {
    pub n_versions: usize,
    pub n_minimal_flop: usize,
    /// Best time per minimal-flop version, seconds (its best config found
    /// by a deterministic sweep).
    pub minimal_times: Vec<f64>,
    /// Relative spread among the minimal-flop versions.
    pub spread: f64,
}

pub fn run(sweep: usize) -> VersionsResult {
    let w = barracuda::kernels::eqn1(barracuda::kernels::EQN1_N);
    let tuner = StatementTuner::build("ex", &w.statements[0], &w.dims);
    let arch = gpusim::gtx980();
    let min_flops = tuner.variants[0].factorization.flops;
    let mut minimal_times = Vec::new();
    for v in &tuner.variants {
        if v.factorization.flops != min_flops {
            continue;
        }
        // Deterministic strided sweep of the version's own space.
        let total = v.space.len();
        let mut best = f64::INFINITY;
        for k in 0..sweep as u128 {
            let cfg = v.space.config(total * k / sweep as u128);
            let Ok(kernels) = map_program(&v.program, &v.space, &cfg, false) else {
                continue; // unmappable sample point: skip, don't abort the sweep
            };
            let t = gpusim::time_program(&v.program, &kernels, &arch, false).gpu_s;
            best = best.min(t);
        }
        minimal_times.push(best);
    }
    let lo = minimal_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = minimal_times.iter().cloned().fold(0.0, f64::max);
    VersionsResult {
        n_versions: tuner.variants.len(),
        n_minimal_flop: minimal_times.len(),
        spread: hi / lo - 1.0,
        minimal_times,
    }
}

pub fn render(r: &VersionsResult) -> Table {
    let mut t = Table::new(
        "Eqn.(1) OCTOPI versions (paper: 15 total, 6 equal-flop, <=9% spread)",
        &["metric", "value"],
    );
    t.row(vec!["versions".into(), r.n_versions.to_string()]);
    t.row(vec![
        "equal-flop versions".into(),
        r.n_minimal_flop.to_string(),
    ]);
    t.row(vec![
        "spread among equal-flop".into(),
        format!("{}%", fmt_f(r.spread * 100.0)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_counts() {
        let r = run(24);
        assert_eq!(r.n_versions, 15);
        assert_eq!(r.n_minimal_flop, 6);
        assert!(r.spread >= 0.0 && r.spread < 0.5, "spread = {}", r.spread);
    }
}
