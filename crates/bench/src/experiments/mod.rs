//! One module per paper table/figure.

pub mod ablations;
pub mod figure2;
pub mod figure3;
pub mod pruning;
pub mod search_bench;
pub mod search_compare;
pub mod search_stats;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod versions;

use barracuda::pipeline::TuneParams;

/// Tuning parameters used by every experiment: the paper-scale settings.
pub fn experiment_params() -> TuneParams {
    TuneParams::paper()
}

/// Reduced parameters for smoke tests of the experiment drivers.
pub fn smoke_params() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 30;
    p.pool_cap = 500;
    p
}
