//! One module per paper table/figure.

pub mod ablations;
pub mod figure2;
pub mod figure3;
pub mod objective_ablation;
pub mod pruning;
pub mod search_bench;
pub mod search_compare;
pub mod search_stats;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod versions;

use barracuda::pipeline::TuneParams;
use gpusim::GpuArch;

/// Tuning parameters used by every experiment: the paper-scale settings.
pub fn experiment_params() -> TuneParams {
    TuneParams::paper()
}

/// Resolves the shared bench flags — `--backend KEY|all` plus repeatable
/// `--arch-file PATH` descriptor loads — into the GPU architectures to
/// run. No flags → `default`, so every binary's no-argument output stays
/// bit-identical to before the registry existed. Descriptor keys work
/// anywhere a built-in key does; `--arch-file` without `--backend` runs
/// the loaded descriptors themselves. Non-GPU backend keys are rejected:
/// these experiments time CUDA mappings.
pub fn archs_from_args(args: &[String], default: &[GpuArch]) -> Result<Vec<GpuArch>, String> {
    let mut backend: Option<String> = None;
    let mut set = barracuda::BackendSet::builtin();
    let mut loaded: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--backend" => backend = Some(it.next().ok_or("--backend needs a key")?.clone()),
            "--arch-file" => {
                let path = it.next().ok_or("--arch-file needs a path")?;
                let key = set
                    .load_arch_file(std::path::Path::new(path))
                    .map_err(|e| e.to_string())?;
                loaded.push(key);
            }
            other => {
                return Err(format!(
                    "unknown option {other} (only --backend KEY|all and --arch-file PATH)"
                ))
            }
        }
    }
    let arch_of = |key: &str| -> Result<GpuArch, String> {
        let b = set.get(key).ok_or_else(|| {
            format!(
                "unknown backend {key} (one of: {}, all)",
                set.keys().join(", ")
            )
        })?;
        match b.arch() {
            Some(arch) if b.caps().searchable => Ok(arch.clone()),
            _ => Err(format!(
                "backend {key} is not a searchable GPU target; this bench times CUDA mappings"
            )),
        }
    };
    match backend.as_deref() {
        None if loaded.is_empty() => Ok(default.to_vec()),
        None => loaded.iter().map(|k| arch_of(k)).collect(),
        Some("all") => Ok(set
            .iter()
            .filter(|b| b.caps().searchable)
            .filter_map(|b| b.arch().cloned())
            .collect()),
        Some(key) => Ok(vec![arch_of(key)?]),
    }
}

/// [`archs_from_args`] with exit-2-on-usage-error semantics for binaries.
pub fn archs_or_exit(default: &[GpuArch]) -> Vec<GpuArch> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match archs_from_args(&args, default) {
        Ok(archs) => archs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Reduced parameters for smoke tests of the experiment drivers.
pub fn smoke_params() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 30;
    p.pool_cap = 500;
    p
}
