//! One module per paper table/figure.

pub mod ablations;
pub mod figure2;
pub mod figure3;
pub mod pruning;
pub mod search_bench;
pub mod search_compare;
pub mod search_stats;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod versions;

use barracuda::pipeline::TuneParams;
use gpusim::GpuArch;

/// Tuning parameters used by every experiment: the paper-scale settings.
pub fn experiment_params() -> TuneParams {
    TuneParams::paper()
}

/// Resolves an optional `--backend KEY|all` argument (shared by the bench
/// binaries) into the GPU architectures to run, via the barracuda backend
/// registry. Absent flag → `default`, so every binary's no-argument output
/// stays bit-identical to before the registry existed. Non-GPU backend
/// keys are rejected: these experiments time CUDA mappings.
pub fn archs_from_args(args: &[String], default: &[GpuArch]) -> Result<Vec<GpuArch>, String> {
    let mut it = args.iter();
    let Some(a) = it.next() else {
        return Ok(default.to_vec());
    };
    if a != "--backend" {
        return Err(format!("unknown option {a} (only --backend KEY|all)"));
    }
    let key = it.next().ok_or("--backend needs a key")?;
    if let Some(extra) = it.next() {
        return Err(format!("unexpected argument {extra}"));
    }
    if key == "all" {
        return Ok(gpusim::all_architectures());
    }
    let backend = barracuda::backend_by_key(key).ok_or_else(|| {
        format!(
            "unknown backend {key} (one of: {}, all)",
            barracuda::backend_keys().join(", ")
        )
    })?;
    match backend.arch() {
        Some(arch) if backend.caps().searchable => Ok(vec![arch.clone()]),
        _ => Err(format!(
            "backend {key} is not a searchable GPU target; this bench times CUDA mappings"
        )),
    }
}

/// [`archs_from_args`] with exit-2-on-usage-error semantics for binaries.
pub fn archs_or_exit(default: &[GpuArch]) -> Vec<GpuArch> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match archs_from_args(&args, default) {
        Ok(archs) => archs,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Reduced parameters for smoke tests of the experiment drivers.
pub fn smoke_params() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 30;
    p.pool_cap = 500;
    p
}
