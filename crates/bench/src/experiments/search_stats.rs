//! §V claims: the Lg3t joint space has ~512,000 tensor-code variants; SURF
//! finds a good one in ~100 evaluations (≈7 minutes at ~4 s per variant)
//! while exhaustive enumeration would take ~23 days. Also compares SURF
//! against random search at the same budget.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use surf::random_search;

#[derive(Clone, Debug)]
pub struct SearchStatsResult {
    pub space_size: u128,
    pub n_evals: usize,
    pub surf_best_s: f64,
    pub random_best_s: f64,
    pub search_seconds: f64,
    pub seconds_per_variant: f64,
    pub exhaustive_days: f64,
}

pub fn run(params: TuneParams) -> SearchStatsResult {
    let w = barracuda::kernels::lg3t(
        barracuda::kernels::NEK_ORDER,
        barracuda::kernels::NEK_ELEMENTS,
    );
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let tuned = tuner.autotune(&arch, params).unwrap();
    let search_seconds = tuned.search.search_seconds(&arch, params.reps);
    let exhaustive = tuned.search.exhaustive_seconds(&arch, params.reps);
    // Random search at the same evaluation budget.
    let pool = tuner.pool(params.pool_cap, params.seed);
    let rnd = random_search(
        &pool,
        |id| tuner.gpu_seconds(id, &arch),
        tuned.search.n_evals,
        params.seed,
    );
    SearchStatsResult {
        space_size: tuner.total_space(),
        n_evals: tuned.search.n_evals,
        surf_best_s: tuned.gpu_seconds,
        random_best_s: rnd.best_y,
        search_seconds,
        seconds_per_variant: search_seconds / tuned.search.n_evals as f64,
        exhaustive_days: exhaustive / 86_400.0,
    }
}

pub fn render(r: &SearchStatsResult) -> Table {
    let mut t = Table::new(
        "Lg3t search-space statistics (paper: 512,000 variants, ~4s/variant, ~23 days exhaustive)",
        &["metric", "value"],
    );
    t.row(vec!["joint space size".into(), r.space_size.to_string()]);
    t.row(vec!["SURF evaluations".into(), r.n_evals.to_string()]);
    t.row(vec![
        "SURF search time".into(),
        format!("{}s", fmt_f(r.search_seconds)),
    ]);
    t.row(vec![
        "per-variant cost".into(),
        format!("{}s", fmt_f(r.seconds_per_variant)),
    ]);
    t.row(vec![
        "exhaustive estimate".into(),
        format!("{} days", fmt_f(r.exhaustive_days)),
    ]);
    t.row(vec![
        "SURF best / random best".into(),
        format!(
            "{} / {} (us)",
            fmt_f(r.surf_best_s * 1e6),
            fmt_f(r.random_best_s * 1e6)
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_space_is_huge_and_surf_competitive() {
        let r = run(smoke_params());
        // The joint Lg3t space must be at least the paper's order of
        // magnitude (ours is larger: richer per-statement spaces).
        assert!(r.space_size > 100_000, "space = {}", r.space_size);
        assert!(r.exhaustive_days > 1.0);
        assert!(r.surf_best_s <= r.random_best_s * 1.5);
    }
}
