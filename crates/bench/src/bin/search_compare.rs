//! Prints the search-strategy comparison at equal budgets.
fn main() {
    let rows = bench::search_compare::run(bench::experiment_params());
    println!("{}", bench::search_compare::render(&rows));
}
