//! Emits the SURF convergence trajectory (best-so-far after each
//! evaluation) as CSV for the benchmark workloads — the raw data behind a
//! "search progress" plot.
use barracuda::prelude::*;

fn main() {
    let params = bench::experiment_params();
    let arch = gpusim::k20();
    println!("workload,eval,best_us");
    for w in [
        kernels::eqn1(kernels::EQN1_N),
        kernels::lg3t(kernels::NEK_ORDER, kernels::NEK_ELEMENTS),
        kernels::nwchem_d1(1, kernels::NWCHEM_TRIP),
    ] {
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&arch, params).unwrap();
        let mut best = f64::INFINITY;
        for (i, t) in tuned.search.evaluated_times.iter().enumerate() {
            best = best.min(*t);
            println!("{},{},{:.3}", w.name, i + 1, best * 1e6);
        }
    }
}
