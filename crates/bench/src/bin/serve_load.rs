//! Load generator for `barracuda serve`: thousands of mixed hot/cold
//! requests against one in-process daemon, reported as
//! `BENCH_serve.json`.
//!
//! Two phases mirror how a tuning service actually warms up:
//!
//! 1. **Cold bursts** — for most workloads, K identical requests fire
//!    concurrently against the empty store. Exactly one search runs per
//!    burst; the rest coalesce onto the leader's result.
//! 2. **Mixed steady state** — T client threads each fire hundreds of
//!    requests over every workload. Almost all are store hits (replay,
//!    zero search evaluations); the few workloads held back from phase 1
//!    go cold mid-stream, so hot and cold latencies interleave the way a
//!    live service sees them.
//!
//! Requests are classified by the response's own `source` field. The
//! run asserts the tentpole's acceptance bar instead of merely printing
//! it: warm requests perform 0 search evaluations, warm p50 is >= 100x
//! below cold p50, and coalescing actually deduplicated work.

use std::sync::Arc;
use std::time::Instant;

use barracuda::json::Json;
use barracuda::serve::metrics::percentile;
use barracuda::{Daemon, ServeOptions};

/// Workloads burst-tuned cold in phase 1 (NWChem excitations).
const PHASE1: &[&str] = &[
    "s1_1", "s1_2", "s1_3", "d1_1", "d1_2", "d1_3", "d2_1", "d2_2", "d2_3",
];
/// Held back from phase 1: their first touch lands mid-load, so the
/// steady-state phase is genuinely mixed hot/cold (Nekbone + TCE).
const PHASE2_ONLY: &[&str] = &["lg3", "tce"];

const BURST: usize = 4;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 400;

fn tune_line(workload: &str) -> String {
    format!(r#"{{"op":"tune","workload":"builtin:{workload}","backend":"k20"}}"#)
}

/// Fire one request, timing it and classifying hit/search by response.
fn fire(daemon: &Daemon, line: &str) -> (bool, u64) {
    let start = Instant::now();
    let out = daemon.handle_line(line);
    let us = start.elapsed().as_micros() as u64;
    let v = Json::parse(&out.response).unwrap_or(Json::Null);
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {}",
        out.response
    );
    let hit = v.get("source").and_then(Json::as_str) == Some("hit");
    if hit {
        assert_eq!(
            v.get("evals_performed").and_then(Json::as_u64),
            Some(0),
            "a store hit must not search: {}",
            out.response
        );
    }
    (hit, us)
}

fn main() {
    let store = std::env::temp_dir().join(format!("barracuda_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            store: Some(store.clone()),
            backend: "k20".to_string(),
            quick: true,
            evals: Some(40),
            deadline_s: None,
        })
        .expect("daemon"),
    );

    // Phase 1: concurrent identical cold bursts — coalescing under fire.
    println!(
        "phase 1: {} workloads x {BURST} concurrent identical cold requests",
        PHASE1.len()
    );
    let t0 = Instant::now();
    let mut cold_us: Vec<u64> = Vec::new();
    let mut warm_us: Vec<u64> = Vec::new();
    for w in PHASE1 {
        let line = tune_line(w);
        let burst: Vec<(bool, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..BURST)
                .map(|_| {
                    let daemon = Arc::clone(&daemon);
                    let line = line.clone();
                    s.spawn(move || fire(&daemon, &line))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        for (hit, us) in burst {
            assert!(!hit, "{w}: the store was cold, nothing may hit");
            cold_us.push(us);
        }
    }
    let after_phase1 = daemon.metrics().snapshot();
    println!(
        "phase 1 done in {:.2}s: {} searches, {} coalesced",
        t0.elapsed().as_secs_f64(),
        after_phase1.store_misses,
        after_phase1.coalesced
    );

    // Phase 2: mixed steady state over every workload.
    let all: Vec<String> = PHASE1
        .iter()
        .chain(PHASE2_ONLY)
        .map(|w| tune_line(w))
        .collect();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!("phase 2: {CLIENTS} clients x {REQUESTS_PER_CLIENT} mixed requests = {total}");
    let t1 = Instant::now();
    let results: Vec<Vec<(bool, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let daemon = Arc::clone(&daemon);
                let all = all.clone();
                s.spawn(move || {
                    // Per-client LCG walk over the workload list: cheap,
                    // deterministic, and different per client.
                    let mut x: u64 = 0x9E3779B97F4A7C15 ^ (c as u64);
                    (0..REQUESTS_PER_CLIENT)
                        .map(|_| {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            fire(&daemon, &all[(x >> 33) as usize % all.len()])
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let phase2_wall = t1.elapsed().as_secs_f64();
    for (hit, us) in results.into_iter().flatten() {
        if hit {
            warm_us.push(us);
        } else {
            cold_us.push(us);
        }
    }

    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let m = daemon.metrics().snapshot();
    let cold_p50 = percentile(&cold_us, 50.0);
    let cold_p99 = percentile(&cold_us, 99.0);
    let warm_p50 = percentile(&warm_us, 50.0);
    let warm_p99 = percentile(&warm_us, 99.0);
    let speedup = cold_p50 as f64 / (warm_p50.max(1)) as f64;
    let throughput = total as f64 / phase2_wall;

    println!(
        "cold: {} requests, p50 {cold_p50} us, p99 {cold_p99} us",
        cold_us.len()
    );
    println!(
        "warm: {} requests, p50 {warm_p50} us, p99 {warm_p99} us",
        warm_us.len()
    );
    println!("warm speedup p50: {speedup:.0}x; steady-state throughput {throughput:.0} req/s");
    println!("{m}");

    // The tentpole's acceptance bar, enforced:
    assert!(
        m.coalesced > 0,
        "concurrent identical cold requests must coalesce"
    );
    assert!(
        speedup >= 100.0,
        "warm p50 ({warm_p50} us) must be >=100x below cold p50 ({cold_p50} us)"
    );
    assert!(
        warm_us.len() > cold_us.len(),
        "the load must be mostly warm"
    );

    let json = Json::Obj(vec![
        (
            "workloads".into(),
            Json::Num((PHASE1.len() + PHASE2_ONLY.len()) as f64),
        ),
        ("cold_requests".into(), Json::Num(cold_us.len() as f64)),
        ("warm_requests".into(), Json::Num(warm_us.len() as f64)),
        ("cold_p50_us".into(), Json::Num(cold_p50 as f64)),
        ("cold_p99_us".into(), Json::Num(cold_p99 as f64)),
        ("warm_p50_us".into(), Json::Num(warm_p50 as f64)),
        ("warm_p99_us".into(), Json::Num(warm_p99 as f64)),
        (
            "warm_speedup_p50".into(),
            Json::Num((speedup * 10.0).round() / 10.0),
        ),
        ("steady_state_rps".into(), Json::Num(throughput.round())),
        ("store_hits".into(), Json::Num(m.store_hits as f64)),
        ("store_misses".into(), Json::Num(m.store_misses as f64)),
        ("coalesced".into(), Json::Num(m.coalesced as f64)),
        ("warm_zero_search_evals".into(), Json::Bool(true)),
        ("daemon_p50_us".into(), Json::Num(m.p50_us as f64)),
        ("daemon_p99_us".into(), Json::Num(m.p99_us as f64)),
    ]);
    match std::fs::write("BENCH_serve.json", json.to_string_pretty()) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&store);
}
