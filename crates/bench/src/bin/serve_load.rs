//! Load generator for `barracuda serve`: thousands of mixed hot/cold
//! requests against one in-process daemon, reported as
//! `BENCH_serve.json`.
//!
//! Three phases mirror how a tuning service warms up and then saturates:
//!
//! 1. **Cold bursts** — for most workloads, K identical requests fire
//!    concurrently against the empty store. Exactly one search runs per
//!    burst; the rest coalesce onto the leader's result.
//! 2. **Mixed steady state** — T client threads each fire hundreds of
//!    requests over every workload. Almost all are store hits (replay,
//!    zero search evaluations); the few workloads held back from phase 1
//!    go cold mid-stream, so hot and cold latencies interleave the way a
//!    live service sees them.
//! 3. **Open-loop overload** — against a fresh daemon pinned to one
//!    cold-search permit and an empty queue, requests arrive on a fixed
//!    clock regardless of completions (open loop — arrivals do not wait
//!    for the server, unlike the closed-loop phases above). Cold
//!    arrivals overflow admission and are shed with typed Busy; warm
//!    arrivals keep replaying from the store throughout the storm. The
//!    saturation/goodput story lands in the `open_loop` section of the
//!    report.
//!
//! Requests are classified by the response's own `source` field; Busy
//! rejections are retried with jittered back-off seeded by the
//! response's `retry_after_ms` hint (phases 1–2) or counted as shed
//! load (phase 3). The run asserts the acceptance bars instead of
//! merely printing them: warm requests perform 0 search evaluations,
//! warm p50 is >= 100x below cold p50, coalescing deduplicated work,
//! and overload sheds typed Busy while warm hits keep flowing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use barracuda::json::Json;
use barracuda::serve::metrics::percentile;
use barracuda::{Daemon, ServeOptions};

/// Workloads burst-tuned cold in phase 1 (NWChem excitations).
const PHASE1: &[&str] = &[
    "s1_1", "s1_2", "s1_3", "d1_1", "d1_2", "d1_3", "d2_1", "d2_2", "d2_3",
];
/// Held back from phase 1: their first touch lands mid-load, so the
/// steady-state phase is genuinely mixed hot/cold (Nekbone + TCE).
const PHASE2_ONLY: &[&str] = &["lg3", "tce"];
/// Distinct cold workloads for the phase-3 overload storm.
const STORM_COLD: &[&str] = &[
    "s1_4", "s1_5", "s1_6", "s1_7", "s1_8", "s1_9", "d1_4", "d1_5", "d1_6", "d1_7", "d1_8", "d1_9",
    "d2_4", "d2_5", "d2_6", "d2_7", "d2_8", "d2_9",
];

const BURST: usize = 4;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 400;
/// Phases 1–2 run under pinned admission (not the machine-sized
/// default) so the bench behaves identically on any host.
const PINNED_MAX_SEARCHES: usize = 4;
const PINNED_QUEUE: usize = 8;
/// Phase-3 open-loop schedule.
const STORM_ARRIVALS: usize = 120;
const STORM_INTERVAL_MS: u64 = 5;
/// Every Nth storm arrival targets the prewarmed workload.
const STORM_WARM_EVERY: usize = 3;

fn tune_line(workload: &str) -> String {
    format!(r#"{{"op":"tune","workload":"builtin:{workload}","backend":"k20"}}"#)
}

/// One classified response.
enum Outcome {
    /// `ok:true` — `hit` from the `source` field, wall time measured.
    Served { hit: bool, us: u64 },
    /// Typed Busy rejection (exit 13) with its back-off hint.
    Busy { retry_after_ms: u64 },
}

/// Fire one request and classify the response. Anything other than a
/// success or a typed Busy fails the bench.
fn fire_raw(daemon: &Daemon, line: &str) -> Outcome {
    let start = Instant::now();
    let out = daemon.handle_line(line);
    let us = start.elapsed().as_micros() as u64;
    let v = Json::parse(&out.response).unwrap_or(Json::Null);
    if v.get("ok").and_then(Json::as_bool) == Some(true) {
        let hit = v.get("source").and_then(Json::as_str) == Some("hit");
        if hit {
            assert_eq!(
                v.get("evals_performed").and_then(Json::as_u64),
                Some(0),
                "a store hit must not search: {}",
                out.response
            );
        }
        return Outcome::Served { hit, us };
    }
    assert_eq!(
        v.get("stage").and_then(Json::as_str),
        Some("busy"),
        "request failed with a non-busy error: {}",
        out.response
    );
    assert_eq!(
        v.get("exit_code").and_then(Json::as_u64),
        Some(13),
        "busy must map to exit 13: {}",
        out.response
    );
    let retry_after_ms = v
        .get("retry_after_ms")
        .and_then(Json::as_u64)
        .expect("busy response carries retry_after_ms");
    assert!(retry_after_ms > 0, "retry_after_ms must be positive");
    Outcome::Busy { retry_after_ms }
}

/// Deterministic jitter in `[0, cap_ms)` from a SplitMix64 draw.
fn jitter_ms(seed: u64, cap_ms: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % cap_ms.max(1)
}

/// Fire with retry-on-Busy: back off by the server's `retry_after_ms`
/// hint plus deterministic jitter, like a well-behaved client. Returns
/// `(hit, us, busy_retries)`.
fn fire(daemon: &Daemon, line: &str, seed: u64) -> (bool, u64, usize) {
    let mut retries = 0;
    loop {
        match fire_raw(daemon, line) {
            Outcome::Served { hit, us } => return (hit, us, retries),
            Outcome::Busy { retry_after_ms } => {
                retries += 1;
                assert!(retries < 50, "request never admitted after 50 retries");
                let backoff = retry_after_ms.min(500) + jitter_ms(seed ^ retries as u64, 20);
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
}

/// Phase 3: open-loop overload against a fresh single-permit daemon.
fn open_loop_phase() -> Json {
    let store =
        std::env::temp_dir().join(format!("barracuda_serve_load_open_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            store: Some(store.clone()),
            backend: "k20".to_string(),
            quick: true,
            evals: Some(40),
            max_searches: Some(1),
            queue: Some(0),
            ..ServeOptions::default()
        })
        .expect("open-loop daemon"),
    );

    // Prewarm one workload so the storm carries genuine warm traffic.
    let warm_line = tune_line("eqn1");
    match fire_raw(&daemon, &warm_line) {
        Outcome::Served { hit: false, .. } => {}
        _ => panic!("prewarm tune must search the empty store"),
    }

    println!(
        "phase 3 (open loop): {STORM_ARRIVALS} arrivals at {STORM_INTERVAL_MS}ms intervals, \
         1 permit, empty queue"
    );
    let t0 = Instant::now();
    let outcomes: Vec<Outcome> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(STORM_ARRIVALS);
        for i in 0..STORM_ARRIVALS {
            // Open loop: arrivals ride the clock, not the completions.
            let due = Duration::from_millis(STORM_INTERVAL_MS * i as u64);
            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            let daemon = Arc::clone(&daemon);
            let line = if i % STORM_WARM_EVERY == 0 {
                warm_line.clone()
            } else {
                tune_line(STORM_COLD[i % STORM_COLD.len()])
            };
            handles.push(s.spawn(move || fire_raw(&daemon, &line)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("storm client"))
            .collect()
    });
    let storm_wall = t0.elapsed().as_secs_f64();

    let mut served_hits = 0usize;
    let mut served_searched = 0usize;
    let mut busy = 0usize;
    let mut min_retry = u64::MAX;
    let mut served_us: Vec<u64> = Vec::new();
    for o in outcomes {
        match o {
            Outcome::Served { hit: true, us } => {
                served_hits += 1;
                served_us.push(us);
            }
            Outcome::Served { hit: false, us } => {
                served_searched += 1;
                served_us.push(us);
            }
            Outcome::Busy { retry_after_ms } => {
                busy += 1;
                min_retry = min_retry.min(retry_after_ms);
            }
        }
    }
    served_us.sort_unstable();
    let served = served_hits + served_searched;
    let goodput = served as f64 / STORM_ARRIVALS as f64;
    let offered_rps = STORM_ARRIVALS as f64 / storm_wall;
    let m = daemon.snapshot();
    println!(
        "phase 3 done in {storm_wall:.2}s: {served} served ({served_hits} warm hits, \
         {served_searched} searched), {busy} busy; goodput {:.0}%",
        goodput * 100.0
    );
    println!("{m}");

    // The overload acceptance bar, enforced:
    assert!(
        busy > 0,
        "a 1-permit daemon under an open-loop cold storm must shed load"
    );
    assert!(
        served_hits > 0,
        "warm hits must keep flowing while the cold pool is saturated"
    );
    assert_eq!(
        m.busy, busy,
        "daemon busy counter must agree with client-observed rejections"
    );
    assert!(m.errors == 0, "overload must shed typed Busy, not errors");

    let _ = std::fs::remove_dir_all(&store);
    Json::Obj(vec![
        ("offered".into(), Json::Num(STORM_ARRIVALS as f64)),
        (
            "arrival_interval_ms".into(),
            Json::Num(STORM_INTERVAL_MS as f64),
        ),
        ("offered_rps".into(), Json::Num(offered_rps.round())),
        ("max_searches".into(), Json::Num(1.0)),
        ("queue".into(), Json::Num(0.0)),
        ("served".into(), Json::Num(served as f64)),
        ("served_warm_hits".into(), Json::Num(served_hits as f64)),
        ("served_searched".into(), Json::Num(served_searched as f64)),
        ("busy".into(), Json::Num(busy as f64)),
        (
            "goodput".into(),
            Json::Num((goodput * 1000.0).round() / 1000.0),
        ),
        (
            "min_retry_after_ms".into(),
            Json::Num(if busy > 0 { min_retry as f64 } else { 0.0 }),
        ),
        (
            "served_p50_us".into(),
            Json::Num(percentile(&served_us, 50.0) as f64),
        ),
        (
            "served_p99_us".into(),
            Json::Num(percentile(&served_us, 99.0) as f64),
        ),
    ])
}

fn main() {
    let store = std::env::temp_dir().join(format!("barracuda_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            store: Some(store.clone()),
            backend: "k20".to_string(),
            quick: true,
            evals: Some(40),
            max_searches: Some(PINNED_MAX_SEARCHES),
            queue: Some(PINNED_QUEUE),
            ..ServeOptions::default()
        })
        .expect("daemon"),
    );

    // Phase 1: concurrent identical cold bursts — coalescing under fire.
    println!(
        "phase 1: {} workloads x {BURST} concurrent identical cold requests \
         ({PINNED_MAX_SEARCHES} permits, queue {PINNED_QUEUE})",
        PHASE1.len()
    );
    let t0 = Instant::now();
    let mut cold_us: Vec<u64> = Vec::new();
    let mut warm_us: Vec<u64> = Vec::new();
    let mut busy_retries = 0usize;
    for w in PHASE1 {
        let line = tune_line(w);
        let burst: Vec<(bool, u64, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..BURST)
                .map(|b| {
                    let daemon = Arc::clone(&daemon);
                    let line = line.clone();
                    s.spawn(move || fire(&daemon, &line, b as u64))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        for (hit, us, retries) in burst {
            // A duplicate that lands after its leader published is a
            // legitimate store hit (the warm bypass answers it without
            // a search permit) — classify it, don't reject it.
            if hit {
                warm_us.push(us);
            } else {
                cold_us.push(us);
            }
            busy_retries += retries;
        }
    }
    let after_phase1 = daemon.metrics().snapshot();
    println!(
        "phase 1 done in {:.2}s: {} searches, {} coalesced, {} busy retries",
        t0.elapsed().as_secs_f64(),
        after_phase1.store_misses,
        after_phase1.coalesced,
        busy_retries
    );

    // Phase 2: mixed steady state over every workload.
    let all: Vec<String> = PHASE1
        .iter()
        .chain(PHASE2_ONLY)
        .map(|w| tune_line(w))
        .collect();
    let total = CLIENTS * REQUESTS_PER_CLIENT;
    println!("phase 2: {CLIENTS} clients x {REQUESTS_PER_CLIENT} mixed requests = {total}");
    let t1 = Instant::now();
    let results: Vec<Vec<(bool, u64, usize)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let daemon = Arc::clone(&daemon);
                let all = all.clone();
                s.spawn(move || {
                    // Per-client LCG walk over the workload list: cheap,
                    // deterministic, and different per client.
                    let mut x: u64 = 0x9E3779B97F4A7C15 ^ (c as u64);
                    (0..REQUESTS_PER_CLIENT)
                        .map(|_| {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            fire(&daemon, &all[(x >> 33) as usize % all.len()], x)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let phase2_wall = t1.elapsed().as_secs_f64();
    for (hit, us, retries) in results.into_iter().flatten() {
        busy_retries += retries;
        if hit {
            warm_us.push(us);
        } else {
            cold_us.push(us);
        }
    }

    cold_us.sort_unstable();
    warm_us.sort_unstable();
    let m = daemon.snapshot();
    let cold_p50 = percentile(&cold_us, 50.0);
    let cold_p99 = percentile(&cold_us, 99.0);
    let warm_p50 = percentile(&warm_us, 50.0);
    let warm_p99 = percentile(&warm_us, 99.0);
    let speedup = cold_p50 as f64 / (warm_p50.max(1)) as f64;
    let throughput = total as f64 / phase2_wall;

    println!(
        "cold: {} requests, p50 {cold_p50} us, p99 {cold_p99} us",
        cold_us.len()
    );
    println!(
        "warm: {} requests, p50 {warm_p50} us, p99 {warm_p99} us",
        warm_us.len()
    );
    println!("warm speedup p50: {speedup:.0}x; steady-state throughput {throughput:.0} req/s");
    println!("{m}");

    // The tentpole's acceptance bar, enforced:
    assert!(
        m.coalesced > 0,
        "concurrent identical cold requests must coalesce"
    );
    assert!(
        speedup >= 100.0,
        "warm p50 ({warm_p50} us) must be >=100x below cold p50 ({cold_p50} us)"
    );
    assert!(
        warm_us.len() > cold_us.len(),
        "the load must be mostly warm"
    );

    // Phase 3: fresh daemon, open-loop overload.
    let open_loop = open_loop_phase();

    let json = Json::Obj(vec![
        (
            "workloads".into(),
            Json::Num((PHASE1.len() + PHASE2_ONLY.len()) as f64),
        ),
        ("max_searches".into(), Json::Num(PINNED_MAX_SEARCHES as f64)),
        ("queue".into(), Json::Num(PINNED_QUEUE as f64)),
        ("cold_requests".into(), Json::Num(cold_us.len() as f64)),
        ("warm_requests".into(), Json::Num(warm_us.len() as f64)),
        ("busy_retries".into(), Json::Num(busy_retries as f64)),
        ("cold_p50_us".into(), Json::Num(cold_p50 as f64)),
        ("cold_p99_us".into(), Json::Num(cold_p99 as f64)),
        ("warm_p50_us".into(), Json::Num(warm_p50 as f64)),
        ("warm_p99_us".into(), Json::Num(warm_p99 as f64)),
        (
            "warm_speedup_p50".into(),
            Json::Num((speedup * 10.0).round() / 10.0),
        ),
        ("steady_state_rps".into(), Json::Num(throughput.round())),
        ("store_hits".into(), Json::Num(m.store_hits as f64)),
        ("store_misses".into(), Json::Num(m.store_misses as f64)),
        ("coalesced".into(), Json::Num(m.coalesced as f64)),
        ("warm_zero_search_evals".into(), Json::Bool(true)),
        ("daemon_p50_us".into(), Json::Num(m.p50_us as f64)),
        ("daemon_p99_us".into(), Json::Num(m.p99_us as f64)),
        ("open_loop".into(), open_loop),
    ]);
    match std::fs::write("BENCH_serve.json", json.to_string_pretty()) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&store);
}
