//! Regenerates the §III claim: 15 Eqn.(1) versions, 6 equal-flop, small spread.
fn main() {
    let r = bench::versions::run(200);
    println!("{}", bench::versions::render(&r));
}
