//! Regenerates the Figure 2 pipeline artifacts for Eqn. (1).
fn main() {
    let a = bench::figure2::run(bench::experiment_params());
    println!("{}", bench::figure2::render(&a));
}
