//! Regenerates Table III of the paper.
fn main() {
    let rows = bench::table3::run(bench::experiment_params());
    println!("{}", bench::table3::render(&rows));
}
