//! Regenerates Table III of the paper. `--backend KEY|all` selects the
//! architectures; the default is the paper's K20 + C2050.
fn main() {
    let archs = bench::archs_or_exit(&[gpusim::k20(), gpusim::c2050()]);
    let rows = bench::table3::run_with_archs(&archs, bench::experiment_params());
    println!("{}", bench::table3::render(&rows));
}
