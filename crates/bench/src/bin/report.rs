//! Runs every experiment and prints the full report (the source of
//! EXPERIMENTS.md's measured numbers).
fn main() {
    let params = bench::experiment_params();
    println!("# Barracuda reproduction report\n");
    let r = bench::versions::run(200);
    println!("{}\n", bench::versions::render(&r));
    let rows = bench::table2::run(params);
    println!("{}\n", bench::table2::render(&rows));
    let rows = bench::table3::run(params);
    println!("{}\n", bench::table3::render(&rows));
    let rows = bench::table4::run(params);
    println!("{}\n", bench::table4::render(&rows));
    let points = bench::figure3::run(barracuda::kernels::NWCHEM_TRIP, params);
    println!("{}", bench::figure3::render(&points));
    for family in ["s1", "d1", "d2"] {
        let (lo, hi) = bench::figure3::family_range(&points, family);
        println!("{family}: {lo:.0}-{hi:.0} GFlops (paper: s1 7-20, d1 20-125, d2 9-53)");
    }
    println!();
    let r = bench::search_stats::run(params);
    println!("{}\n", bench::search_stats::render(&r));
    let rows = bench::ablations::run(params);
    println!("{}\n", bench::ablations::render(&rows));
    let rows = bench::pruning::run(params);
    println!("{}\n", bench::pruning::render(&rows));
    let rows = bench::search_compare::run(params);
    println!("{}\n", bench::search_compare::render(&rows));
    let rows = bench::objective_ablation::run(params);
    println!("{}\n", bench::objective_ablation::render(&rows));
    match bench::objective_ablation::write_json(&rows, "BENCH_objective.json") {
        Ok(()) => println!("wrote BENCH_objective.json\n"),
        Err(e) => eprintln!("could not write BENCH_objective.json: {e}\n"),
    }
    let rows = bench::search_bench::run(params);
    println!("{}\n", bench::search_bench::render(&rows));
    println!("{}\n", bench::search_bench::render_hot(&rows));
    match bench::search_bench::write_json(&rows, "BENCH_search.json") {
        Ok(()) => println!("wrote BENCH_search.json\n"),
        Err(e) => eprintln!("could not write BENCH_search.json: {e}\n"),
    }
    let a = bench::figure2::run(params);
    println!("{}", bench::figure2::render(&a));
}
