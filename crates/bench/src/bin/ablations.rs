//! Prints the simulated-impact ablation table (strength reduction, scalar
//! replacement, permutation, unroll, search strategy).
fn main() {
    let rows = bench::ablations::run(bench::experiment_params());
    println!("{}", bench::ablations::render(&rows));
}
