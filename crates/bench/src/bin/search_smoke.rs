//! CI smoke gate for the search engine: runs the serial-vs-parallel bench
//! at reduced budgets and fails (nonzero exit) if any workload's parallel
//! run diverges from the serial run bit-for-bit.
fn main() {
    let rows = bench::search_bench::run(bench::smoke_params());
    println!("{}", bench::search_bench::render(&rows));
    println!("{}", bench::search_bench::render_hot(&rows));
    let diverged: Vec<&str> = rows
        .iter()
        .filter(|r| !r.identical)
        .map(|r| r.workload.as_str())
        .collect();
    if !diverged.is_empty() {
        eprintln!("serial/parallel divergence in: {}", diverged.join(", "));
        std::process::exit(1);
    }
    println!("all workloads bit-identical serial vs parallel");
}
