//! Prints the objective ablation table and writes `BENCH_objective.json`.
fn main() {
    let rows = bench::objective_ablation::run(bench::experiment_params());
    println!("{}", bench::objective_ablation::render(&rows));
    match bench::objective_ablation::write_json(&rows, "BENCH_objective.json") {
        Ok(()) => println!("wrote BENCH_objective.json"),
        Err(e) => eprintln!("could not write BENCH_objective.json: {e}"),
    }
}
