//! Overload smoke test for `barracuda serve` — the CI-facing proof that
//! admission control sheds load without starving warm traffic.
//!
//! A real TCP daemon is pinned to **one** cold-search permit and an
//! **empty** wait queue, then hit with a barrier-synchronized storm of
//! distinct cold tunes (distinct workloads cannot coalesce, so every one
//! needs its own permit). Exactly one storm request can hold the permit
//! at a time; the overflow must be shed with typed Busy (exit 13,
//! `retry_after_ms` present). While the storm is in flight, warm
//! requests for a prewarmed workload must keep answering from the store
//! with zero search evaluations. Finally the daemon drains cleanly on
//! shutdown.
//!
//! Prints one line per acceptance criterion for CI to grep:
//!
//! ```text
//! overload_smoke: N typed busy rejections (exit 13, retry_after_ms > 0)
//! overload_smoke: M warm hits served during the storm (0 evals each)
//! overload_smoke: clean drain
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use barracuda::json::Json;
use barracuda::serve::transport::serve_tcp_on;
use barracuda::{Daemon, ServeOptions};

/// Distinct cold workloads: no two can coalesce.
const STORM: &[&str] = &["s1_1", "s1_2", "d1_1", "d1_2", "d2_1", "d2_2"];

/// One request over its own TCP connection; returns the parsed response.
fn request(addr: std::net::SocketAddr, line: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "{line}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    Json::parse(resp.trim_end()).expect("response json")
}

fn tune_line(workload: &str, evals: usize) -> String {
    format!(
        r#"{{"op":"tune","workload":"builtin:{workload}","backend":"k20","quick":true,"evals":{evals}}}"#
    )
}

fn main() {
    let store =
        std::env::temp_dir().join(format!("barracuda_overload_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);

    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            store: Some(store.clone()),
            backend: "k20".to_string(),
            quick: true,
            evals: Some(40),
            max_searches: Some(1),
            queue: Some(0),
            ..ServeOptions::default()
        })
        .expect("daemon"),
    );

    // Bind port 0 ourselves to learn the ephemeral address, then hand
    // the listener to the real TCP transport on its own thread.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || serve_tcp_on(daemon, listener))
    };

    // Prewarm: one cold tune populates the store for the warm prober.
    let warm = request(addr, &tune_line("eqn1", 40));
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        warm.get("source").and_then(Json::as_str),
        Some("searched"),
        "prewarm must search the empty store"
    );

    // The storm: distinct cold tunes released by one barrier. Larger
    // eval budgets keep the admitted search in flight while the warm
    // prober runs.
    println!(
        "overload_smoke: storm of {} distinct cold tunes, 1 permit, empty queue",
        STORM.len()
    );
    let barrier = Arc::new(Barrier::new(STORM.len()));
    let storm: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = STORM
            .iter()
            .map(|w| {
                let barrier = Arc::clone(&barrier);
                let line = tune_line(w, 300);
                s.spawn(move || {
                    barrier.wait();
                    request(addr, &line)
                })
            })
            .collect();

        // Warm prober: hammer the prewarmed workload while the storm is
        // in flight. Store hits bypass admission, so every probe must
        // succeed even though the single permit is taken.
        let mut warm_hits = 0usize;
        let probe = tune_line("eqn1", 40);
        let t0 = Instant::now();
        while t0.elapsed().as_millis() < 200 {
            let v = request(addr, &probe);
            assert_eq!(
                v.get("ok").and_then(Json::as_bool),
                Some(true),
                "warm probe failed under storm: {v:?}"
            );
            assert_eq!(v.get("source").and_then(Json::as_str), Some("hit"));
            assert_eq!(v.get("evals_performed").and_then(Json::as_u64), Some(0));
            warm_hits += 1;
        }
        println!("overload_smoke: {warm_hits} warm hits served during the storm (0 evals each)");
        assert!(warm_hits > 0);

        handles
            .into_iter()
            .map(|h| h.join().expect("storm client"))
            .collect()
    });

    let mut served = 0usize;
    let mut busy = 0usize;
    for v in &storm {
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            served += 1;
            continue;
        }
        assert_eq!(
            v.get("stage").and_then(Json::as_str),
            Some("busy"),
            "storm overflow must be typed busy: {v:?}"
        );
        assert_eq!(v.get("exit_code").and_then(Json::as_u64), Some(13));
        let retry = v
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("retry_after_ms");
        assert!(retry > 0);
        busy += 1;
    }
    println!("overload_smoke: {busy} typed busy rejections (exit 13, retry_after_ms > 0)");
    assert!(served >= 1, "one storm request must win the permit");
    assert!(busy >= 1, "overflow must be shed with typed busy");

    // Stats must agree with what the clients observed.
    let stats = request(addr, r#"{"op":"stats"}"#);
    assert_eq!(
        stats.get("busy").and_then(Json::as_u64),
        Some(busy as u64),
        "daemon busy counter must match client-observed rejections"
    );
    assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(0));

    // Clean drain: shutdown is acknowledged and the transport exits.
    let down = request(addr, r#"{"op":"shutdown"}"#);
    assert_eq!(down.get("ok").and_then(Json::as_bool), Some(true));
    server
        .join()
        .expect("server thread")
        .expect("transport exits cleanly");
    println!("overload_smoke: clean drain");

    let _ = std::fs::remove_dir_all(&store);
}
