//! Regenerates Table IV of the paper.
fn main() {
    let rows = bench::table4::run(bench::experiment_params());
    println!("{}", bench::table4::render(&rows));
}
