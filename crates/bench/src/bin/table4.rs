//! Regenerates Table IV of the paper. `--backend KEY|all` selects the GPU
//! column's architecture (one table per arch); the default is GTX 980.
fn main() {
    let archs = bench::archs_or_exit(&[gpusim::gtx980()]);
    for arch in &archs {
        let rows = bench::table4::run_on(arch, bench::experiment_params());
        println!("{}", bench::table4::render_for(&arch.name, &rows));
    }
}
