//! Regenerates the §V claims about the Lg3t search space.
fn main() {
    let r = bench::search_stats::run(bench::experiment_params());
    println!("{}", bench::search_stats::render(&r));
}
