//! Regenerates Figure 3: the 27 NWChem kernels on C2050 and K20.
fn main() {
    let points = bench::figure3::run(barracuda::kernels::NWCHEM_TRIP, bench::experiment_params());
    println!("{}", bench::figure3::render(&points));
    for family in ["s1", "d1", "d2"] {
        let (lo, hi) = bench::figure3::family_range(&points, family);
        println!("{family}: {lo:.0}-{hi:.0} GFlops (paper: s1 7-20, d1 20-125, d2 9-53)");
    }
}
