//! Regenerates Figure 3: the 27 NWChem kernels on C2050 and K20 by
//! default; `--backend KEY|all` selects other architectures.
fn main() {
    let archs = bench::archs_or_exit(&[gpusim::c2050(), gpusim::k20()]);
    let points = bench::figure3::run_with_archs(
        barracuda::kernels::NWCHEM_TRIP,
        &archs,
        bench::experiment_params(),
    );
    println!("{}", bench::figure3::render(&points));
    for family in ["s1", "d1", "d2"] {
        let (lo, hi) = bench::figure3::family_range(&points, family);
        println!("{family}: {lo:.0}-{hi:.0} GFlops (paper: s1 7-20, d1 20-125, d2 9-53)");
    }
}
