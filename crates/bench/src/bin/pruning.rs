//! Prints the pruning study (space reduction vs tuned quality).
fn main() {
    let rows = bench::pruning::run(bench::experiment_params());
    println!("{}", bench::pruning::render(&rows));
}
