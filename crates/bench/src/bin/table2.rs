//! Regenerates Table II of the paper.
fn main() {
    let rows = bench::table2::run(bench::experiment_params());
    println!("{}", bench::table2::render(&rows));
}
