//! Regenerates Table II of the paper. `--backend KEY|all` selects the
//! architectures; the default is the paper's three GPUs.
fn main() {
    let archs = bench::archs_or_exit(&gpusim::arch::all_architectures());
    let rows = bench::table2::run_with_archs(&archs, bench::experiment_params());
    println!("{}", bench::table2::render(&rows));
}
