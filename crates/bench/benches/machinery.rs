//! Criterion benchmarks of the real machinery: enumeration, space
//! construction, simulation, surrogate modeling, and the actual executors.
//!
//! These measure wall time of this implementation (not simulated GPU time),
//! so they answer "is the autotuner itself fast enough" — the paper's §V
//! point that search must be practical.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use barracuda::prelude::*;
use barracuda::variant::StatementTuner;
use cpusim::{execute_parallel, execute_sequential};
use surf::{ExtraTrees, ForestParams};
use tcr::mapping::map_program;
use tensor::index::uniform_dims;
use tensor::{Shape, Tensor};

fn eqn1_workload() -> Workload {
    kernels::eqn1(10)
}

fn bench_octopi_enumeration(c: &mut Criterion) {
    let w = eqn1_workload();
    c.bench_function("octopi/enumerate_eqn1_15_versions", |b| {
        b.iter(|| {
            let fs =
                octopi::enumerate_factorizations(black_box(&w.statements[0]), black_box(&w.dims));
            assert_eq!(fs.len(), 15);
            fs
        })
    });
    let tce = kernels::tce_ex(10);
    c.bench_function("octopi/enumerate_tce_ex", |b| {
        b.iter(|| {
            octopi::enumerate_factorizations(black_box(&tce.statements[0]), black_box(&tce.dims))
        })
    });
}

fn bench_space_build(c: &mut Criterion) {
    let w = eqn1_workload();
    c.bench_function("tcr/build_eqn1_statement_tuner", |b| {
        b.iter(|| StatementTuner::build("ex", black_box(&w.statements[0]), &w.dims))
    });
}

fn bench_simulator_eval(c: &mut Criterion) {
    let w = kernels::lg3(12, 512);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let total = tuner.total_space();
    c.bench_function("gpusim/evaluate_lg3_configuration", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 7919) % total;
            black_box(tuner.gpu_seconds(i, &arch))
        })
    });
}

fn bench_forest(c: &mut Criterion) {
    // Training set shaped like a real SURF iteration: ~256 samples of ~150
    // binarized features.
    let w = eqn1_workload();
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let pool = tuner.pool(256, 3);
    let xs: Vec<Vec<f64>> = pool.iter().map(|&id| tuner.features(id)).collect();
    let ys: Vec<f64> = pool
        .iter()
        .map(|&id| tuner.gpu_seconds(id, &arch))
        .collect();
    let params = ForestParams {
        n_trees: 30,
        min_samples_leaf: 2,
        k_features: Some(48),
        seed: 1,
    };
    c.bench_function("surf/fit_forest_256_samples", |b| {
        b.iter(|| ExtraTrees::fit(black_box(&xs), black_box(&ys), params))
    });
    let model = ExtraTrees::fit(&xs, &ys, params);
    c.bench_function("surf/predict_batch_256", |b| {
        b.iter(|| model.predict_batch(black_box(&xs)))
    });
}

fn bench_executors(c: &mut Criterion) {
    // Real CPU contraction execution, sequential vs 4 threads.
    let w = kernels::lg3(12, 64);
    let programs = barracuda::cpu::cpu_programs(&w);
    let p = &programs[0];
    let ids = p.input_ids();
    let inputs: Vec<Tensor> = ids
        .iter()
        .map(|&id| Tensor::random(p.arrays[id].shape(&p.dims), id as u64))
        .collect();
    let refs: Vec<&Tensor> = inputs.iter().collect();
    c.bench_function("cpusim/lg3_statement_sequential", |b| {
        b.iter(|| execute_sequential(black_box(p), black_box(&refs)))
    });
    c.bench_function("cpusim/lg3_statement_4_threads", |b| {
        b.iter(|| execute_parallel(black_box(p), black_box(&refs), 4))
    });
    c.bench_function("cpusim/lg3_statement_tiled32", |b| {
        b.iter(|| cpusim::execute_tiled(black_box(p), black_box(&refs), 32))
    });

    // Functional GPU executor on a mapped kernel.
    let tuner = WorkloadTuner::build(&w);
    let st = &tuner.statements[0];
    let space = &st.variants[0].space;
    let cfg = space.config(0);
    let kernels = map_program(&st.variants[0].program, space, &cfg, false)
        .unwrap_or_else(|e| panic!("config 0 must map: {e}"));
    c.bench_function("gpusim/execute_lg3_statement", |b| {
        b.iter_batched(
            || refs.clone(),
            |refs| gpusim::execute_program(&st.variants[0].program, &kernels, &refs),
            BatchSize::SmallInput,
        )
    });
}

fn bench_oracle(c: &mut Criterion) {
    let dims = uniform_dims(&["i", "j", "k"], 32);
    let spec = tensor::EinsumSpec::new(&[&["i", "j"], &["j", "k"]], &["i", "k"], dims);
    let a = Tensor::random(Shape::new([32, 32]), 1);
    let b = Tensor::random(Shape::new([32, 32]), 2);
    c.bench_function("tensor/einsum_oracle_matmul32", |bch| {
        bch.iter(|| spec.evaluate(black_box(&[&a, &b])))
    });
}

fn bench_codegen(c: &mut Criterion) {
    let w = eqn1_workload();
    let tuner = WorkloadTuner::build(&w);
    let tuned = tuner
        .autotune(&gpusim::gtx980(), TuneParams::quick())
        .unwrap();
    c.bench_function("tcr/cuda_codegen_eqn1", |b| {
        b.iter(|| black_box(&tuned).cuda_source())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_octopi_enumeration,
    bench_space_build,
    bench_simulator_eval,
    bench_forest,
    bench_executors,
    bench_oracle,
    bench_codegen,

}
criterion_main!(benches);
