//! Criterion ablation benchmarks: wall-time cost of the search strategies
//! and of the surrogate model at different sizes. (The *simulated-impact*
//! ablations — what each transformation buys in kernel time — are printed
//! by `cargo run -p bench --bin ablations`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use barracuda::prelude::*;
use surf::{random_search, surf_search, ExtraTrees, ForestParams, SurfParams};

fn search_fixture() -> (WorkloadTuner, Vec<u128>, gpusim::GpuArch) {
    let w = kernels::eqn1(10);
    let tuner = WorkloadTuner::build(&w);
    let pool = tuner.pool(2_000, 7);
    (tuner, pool, gpusim::k20())
}

fn bench_search_strategies(c: &mut Criterion) {
    let (tuner, pool, arch) = search_fixture();
    let mut group = c.benchmark_group("search_strategy_walltime");
    group.bench_function("surf_100_evals", |b| {
        b.iter(|| {
            surf_search(
                black_box(&pool),
                |id| tuner.features(id),
                |id| tuner.gpu_seconds(id, &arch),
                SurfParams {
                    max_evals: 100,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("random_100_evals", |b| {
        b.iter(|| random_search(black_box(&pool), |id| tuner.gpu_seconds(id, &arch), 100, 7))
    });
    group.finish();
}

fn bench_forest_sizes(c: &mut Criterion) {
    let (tuner, pool, arch) = search_fixture();
    let xs: Vec<Vec<f64>> = pool
        .iter()
        .take(200)
        .map(|&id| tuner.features(id))
        .collect();
    let ys: Vec<f64> = pool
        .iter()
        .take(200)
        .map(|&id| tuner.gpu_seconds(id, &arch))
        .collect();
    let mut group = c.benchmark_group("forest_size");
    for n_trees in [10usize, 30, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, &n| {
            b.iter(|| {
                ExtraTrees::fit(
                    black_box(&xs),
                    black_box(&ys),
                    ForestParams {
                        n_trees: n,
                        min_samples_leaf: 2,
                        k_features: Some(48),
                        seed: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_pool_strategies(c: &mut Criterion) {
    let w = kernels::tce_ex(10);
    let tuner = WorkloadTuner::build(&w);
    let mut group = c.benchmark_group("pool_sampling");
    for cap in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| tuner.pool(cap, 7))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_search_strategies,
    bench_forest_sizes,
    bench_pool_strategies

}
criterion_main!(benches);
