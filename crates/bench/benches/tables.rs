//! Criterion benchmarks: one per paper table/figure, exercising the full
//! pipeline that regenerates it (at reduced search budgets, so `cargo
//! bench` stays quick — the `bin/*` binaries run the paper-scale versions).

use barracuda::TuningSession;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn params() -> barracuda::pipeline::TuneParams {
    bench::smoke_params()
}

// Each iteration gets a fresh TuningSession: the benchmarks time the full
// search pipeline, not a warm-cache replay.

fn bench_table2(c: &mut Criterion) {
    let archs = gpusim::arch::all_architectures();
    let w = barracuda::kernels::eqn1(10);
    c.bench_function("table2/eqn1_all_archs", |b| {
        b.iter(|| {
            bench::table2::run_benchmark(&TuningSession::new(), black_box(&w), &archs, params())
        })
    });
}

fn bench_table3(c: &mut Criterion) {
    let cfg = barracuda::nekbone::NekboneConfig {
        order: 8,
        elements: 32,
        cg_iters: 1,
        tol: 1e-6,
    };
    c.bench_function("table3/nekbone_k20", |b| {
        b.iter(|| bench::table3::run_arch(&TuningSession::new(), &gpusim::k20(), cfg, params()))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4/nwchem_s1_family_trip8", |b| {
        b.iter(|| bench::table4::nwchem_row("s1", 8, params()))
    });
}

fn bench_figure3(c: &mut Criterion) {
    let w = barracuda::kernels::nwchem_d1(1, 8);
    let arch = gpusim::k20();
    c.bench_function("figure3/d1_1_k20", |b| {
        b.iter(|| bench::figure3::run_kernel(&TuningSession::new(), black_box(&w), &arch, params()))
    });
}

fn bench_figure2(c: &mut Criterion) {
    c.bench_function("figure2/artifacts", |b| {
        b.iter(|| bench::figure2::run(params()))
    });
}

fn bench_versions(c: &mut Criterion) {
    c.bench_function("versions/eqn1_sweep24", |b| {
        b.iter(|| bench::versions::run(24))
    });
}

fn bench_nekbone_cg(c: &mut Criterion) {
    // A real CG iteration through the real executors.
    let cfg = barracuda::nekbone::NekboneConfig {
        order: 6,
        elements: 8,
        cg_iters: 3,
        tol: 0.0,
    };
    let op = barracuda::nekbone::NekboneOperator::new(cfg, 5);
    c.bench_function("nekbone/cg_3_iterations_real", |b| {
        b.iter(|| barracuda::nekbone::run_cg(black_box(&op), 1))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_table2,
    bench_table3,
    bench_table4,
    bench_figure3,
    bench_figure2,
    bench_versions,
    bench_nekbone_cg,

}
criterion_main!(benches);
