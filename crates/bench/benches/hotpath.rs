//! Criterion microbenchmarks of the evaluation hot path: the exact
//! per-evaluation operations the SURF search loop performs millions of
//! times — config decode, kernel timing, and surrogate batch prediction —
//! each with the allocating baseline next to the zero-allocation fast path
//! so regressions in either show up as a ratio, not just a number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use barracuda::prelude::*;
use barracuda::EvalCache;
use surf::binarize::{CompactMatrix, FeatureMatrix};
use surf::{ExtraTrees, ForestParams};

fn bench_config_decode(c: &mut Criterion) {
    let w = kernels::table2_benchmarks()
        .into_iter()
        .find(|w| w.name == "tce")
        .unwrap();
    let tuner = WorkloadTuner::build(&w);
    let st = &tuner.statements[0];
    let total: u128 = st.total();

    // Allocating baseline: a fresh Configuration per id.
    c.bench_function("hotpath/decode_alloc_tce_statement", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 7919) % total;
            black_box(st.decode(black_box(i)))
        })
    });

    // Zero-allocation path used by the memoized evaluator: raw version
    // split plus mixed-radix digits into a reused scratch vector.
    c.bench_function("hotpath/decode_zero_alloc_tce_statement", |b| {
        let mut i = 0u128;
        let mut choices: Vec<usize> = Vec::new();
        b.iter(|| {
            i = (i + 7919) % total;
            let (v, local) = st.decode_raw(black_box(i));
            st.variants[v].space.choices_into(local, &mut choices);
            black_box((v, choices.len()))
        })
    });
}

fn bench_kernel_timing(c: &mut Criterion) {
    let w = kernels::lg3(12, 512);
    let tuner = WorkloadTuner::build(&w);
    let st = &tuner.statements[0];
    let space = &st.variants[0].space;
    let cfg = space.config(0);
    let kernels = tcr::mapping::map_program(&st.variants[0].program, space, &cfg, false)
        .unwrap_or_else(|e| panic!("config 0 must map: {e}"));
    let arch = gpusim::k20();

    // Full breakdown: clones the kernel name and builds a KernelTiming.
    c.bench_function("hotpath/time_kernel_breakdown", |b| {
        b.iter(|| {
            black_box(gpusim::time_kernel(
                black_box(&kernels[0]),
                black_box(&arch),
            ))
        })
    });

    // Fast path the per-op memo layer stores: just the seconds.
    c.bench_function("hotpath/kernel_time_s_fast", |b| {
        b.iter(|| {
            black_box(gpusim::kernel_time_s(
                black_box(&kernels[0]),
                black_box(&arch),
            ))
        })
    });
}

fn bench_predict(c: &mut Criterion) {
    // Forest and pool shaped like a real SURF iteration on eqn1.
    let w = kernels::eqn1(10);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let pool = tuner.pool(512, 3);
    let xs: Vec<Vec<f64>> = pool.iter().map(|&id| tuner.features(id)).collect();
    let ys: Vec<f64> = pool
        .iter()
        .map(|&id| tuner.gpu_seconds(id, &arch))
        .collect();
    let params = ForestParams {
        n_trees: 30,
        min_samples_leaf: 2,
        k_features: Some(48),
        seed: 1,
    };
    let model = ExtraTrees::fit(&xs, &ys, params);

    // Allocating baseline: Vec<Vec<f64>> rows re-packed every call.
    c.bench_function("hotpath/predict_batch_512", |b| {
        b.iter(|| black_box(model.predict_batch(black_box(&xs))))
    });

    // Search-loop path: rows bit-packed once into a CompactMatrix, the
    // forest compiled against its schema, predictions into reused scratch.
    let compact = CompactMatrix::from_matrix(&FeatureMatrix::from_rows(&xs));
    let compiled = model.compile(&compact);
    let rows: Vec<u32> = (0..xs.len() as u32).collect();
    c.bench_function("hotpath/predict_compiled_512", |b| {
        let mut out: Vec<f64> = Vec::new();
        b.iter(|| {
            compiled.predict_rows_into(black_box(&compact), black_box(&rows), &mut out);
            black_box(out.len())
        })
    });

    // Per-round model refresh, allocating baseline: what the search loop
    // used to do each batch — compile a fresh CompiledForest (new node
    // and value vectors per tree) and collect predictions into a fresh
    // buffer.
    c.bench_function("hotpath/round_compile_alloc_512", |b| {
        b.iter(|| {
            let compiled = model.compile(black_box(&compact));
            let mut out: Vec<f64> = Vec::new();
            compiled.predict_rows_into(black_box(&compact), black_box(&rows), &mut out);
            black_box(out.len())
        })
    });

    // Steady-state path after the scratch-reuse fix: `compile_into`
    // refills the same CompiledForest in place and predictions land in
    // the same caller-owned buffer, so a round allocates nothing once
    // the buffers reach their high-water mark.
    c.bench_function("hotpath/round_compile_into_reused_512", |b| {
        let mut compiled = surf::CompiledForest::empty();
        let mut out: Vec<f64> = Vec::new();
        b.iter(|| {
            model.compile_into(black_box(&compact), &mut compiled);
            compiled.predict_rows_into(black_box(&compact), black_box(&rows), &mut out);
            black_box(out.len())
        })
    });
}

fn bench_pool_feature_reuse(c: &mut Criterion) {
    // The closure-based serial search backend used to re-featurize every
    // remaining candidate on every scoring round. This pair pins the win
    // from caching the binarized pool: the baseline pays featurization +
    // binarization + compilation per round, the cached path only refreshes
    // the compiled forest against the prebuilt CompactMatrix.
    let w = kernels::eqn1(10);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let pool = tuner.pool(512, 3);
    let xs: Vec<Vec<f64>> = pool.iter().map(|&id| tuner.features(id)).collect();
    let ys: Vec<f64> = pool
        .iter()
        .map(|&id| tuner.gpu_seconds(id, &arch))
        .collect();
    let params = ForestParams {
        n_trees: 30,
        min_samples_leaf: 2,
        k_features: Some(48),
        seed: 1,
    };
    let model = ExtraTrees::fit(&xs, &ys, params);
    let rows: Vec<u32> = (0..pool.len() as u32).collect();

    // Per-round baseline: featurize, binarize and compile from scratch.
    c.bench_function("hotpath/score_refeaturize_each_round_512", |b| {
        b.iter(|| {
            let feats: Vec<Vec<f64>> = pool.iter().map(|&id| tuner.features(id)).collect();
            let compact = CompactMatrix::from_matrix(&FeatureMatrix::from_rows(&feats));
            let compiled = model.compile(&compact);
            let mut out: Vec<f64> = Vec::new();
            compiled.predict_rows_into(&compact, black_box(&rows), &mut out);
            black_box(out.len())
        })
    });

    // Cached-pool path: the CompactMatrix is built once outside the round;
    // each round refills the compiled forest and scratch in place.
    let compact = CompactMatrix::from_matrix(&FeatureMatrix::from_rows(&xs));
    c.bench_function("hotpath/score_cached_pool_features_512", |b| {
        let mut compiled = surf::CompiledForest::empty();
        let mut out: Vec<f64> = Vec::new();
        b.iter(|| {
            model.compile_into(black_box(&compact), &mut compiled);
            compiled.predict_rows_into(black_box(&compact), black_box(&rows), &mut out);
            black_box(out.len())
        })
    });
}

fn bench_memoized_eval(c: &mut Criterion) {
    let w = kernels::table2_benchmarks()
        .into_iter()
        .find(|w| w.name == "tce")
        .unwrap();
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let total = tuner.total_space();

    // Unmemoized whole-configuration evaluation (map + validate + time).
    c.bench_function("hotpath/eval_tce_unmemoized", |b| {
        let mut i = 0u128;
        b.iter(|| {
            i = (i + 104_729) % total;
            black_box(tuner.gpu_seconds(black_box(i), &arch))
        })
    });

    // Same ids through the per-op memo layer with a warm cache: every op
    // digit has been seen, so the evaluation is pure cache hits plus a sum.
    let cache = EvalCache::new();
    let ids: Vec<u128> = (0..256u128).map(|k| (k * 104_729) % total).collect();
    for &id in &ids {
        let _ = tuner.try_gpu_seconds_memo(id, &arch, &cache);
    }
    c.bench_function("hotpath/eval_tce_memoized_warm", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % ids.len();
            black_box(
                tuner
                    .try_gpu_seconds_memo(black_box(ids[k]), &arch, &cache)
                    .ok(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_config_decode,
    bench_kernel_timing,
    bench_predict,
    bench_pool_feature_reuse,
    bench_memoized_eval,
}
criterion_main!(benches);
