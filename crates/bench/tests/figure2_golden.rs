//! Golden-file test pinning the CUDA text Figure 2(d) emits for Eqn. (1).
//!
//! The simulator and search are fully deterministic, so the tuned kernel
//! for a fixed budget is a stable artifact; this test freezes its exact
//! source text. If a deliberate codegen change shifts the output, refresh
//! the golden with `BLESS=1 cargo test -p bench --test figure2_golden`.

use std::path::Path;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/figure2_eqn1.cu");

#[test]
fn eqn1_cuda_matches_golden() {
    let artifacts = bench::figure2::run(bench::smoke_params());
    let got = artifacts.cuda;
    assert!(
        got.contains("__global__"),
        "figure2 must emit a CUDA kernel"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(Path::new(GOLDEN))
        .unwrap_or_else(|e| panic!("missing golden {GOLDEN} ({e}); run with BLESS=1 to create it"));
    assert_eq!(
        got, want,
        "Eqn.(1) CUDA drifted from the golden file; if intentional, \
         re-bless with BLESS=1 cargo test -p bench --test figure2_golden"
    );
}
