__global__ void ex_0_GPU_0
(double *t1, double *B, double *U)
{
  int tx = threadIdx.x;
  int ty = threadIdx.y;
  int bx = blockIdx.x;
  double nv = 0.0;
  int m;
  for (m = 0; m < 10; m += 10) {
    nv = nv + B[(m + 0) * 10 + ty] * U[bx * 100 + (m + 0) * 10 + tx];
    nv = nv + B[(m + 1) * 10 + ty] * U[bx * 100 + (m + 1) * 10 + tx];
    nv = nv + B[(m + 2) * 10 + ty] * U[bx * 100 + (m + 2) * 10 + tx];
    nv = nv + B[(m + 3) * 10 + ty] * U[bx * 100 + (m + 3) * 10 + tx];
    nv = nv + B[(m + 4) * 10 + ty] * U[bx * 100 + (m + 4) * 10 + tx];
    nv = nv + B[(m + 5) * 10 + ty] * U[bx * 100 + (m + 5) * 10 + tx];
    nv = nv + B[(m + 6) * 10 + ty] * U[bx * 100 + (m + 6) * 10 + tx];
    nv = nv + B[(m + 7) * 10 + ty] * U[bx * 100 + (m + 7) * 10 + tx];
    nv = nv + B[(m + 8) * 10 + ty] * U[bx * 100 + (m + 8) * 10 + tx];
    nv = nv + B[(m + 9) * 10 + ty] * U[bx * 100 + (m + 9) * 10 + tx];
  }
  t1[ty * 100 + bx * 10 + tx] = nv;
}

__global__ void ex_0_GPU_1
(double *t2, double *C, double *t1)
{
  int tx = threadIdx.x;
  int bx = blockIdx.x;
  int by = blockIdx.y;
  double nv = 0.0;
  int n;
  for (n = 0; n < 7; n += 7) {
    nv = nv + C[(n + 0) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 0)];
    nv = nv + C[(n + 1) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 1)];
    nv = nv + C[(n + 2) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 2)];
    nv = nv + C[(n + 3) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 3)];
    nv = nv + C[(n + 4) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 4)];
    nv = nv + C[(n + 5) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 5)];
    nv = nv + C[(n + 6) * 10 + by] * t1[bx * 100 + tx * 10 + (n + 6)];
  }
  for (; n < 10; n++) {
    nv = nv + C[n * 10 + by] * t1[bx * 100 + tx * 10 + n];
  }
  t2[by * 100 + bx * 10 + tx] = nv;
}

__global__ void ex_0_GPU_2
(double *V, double *A, double *t2)
{
  int tx = threadIdx.x;
  int bx = blockIdx.x;
  int by = blockIdx.y;
  double nv = 0.0;
  int l;
  for (l = 0; l < 10; l += 5) {
    nv = nv + A[(l + 0) * 10 + tx] * t2[by * 100 + bx * 10 + (l + 0)];
    nv = nv + A[(l + 1) * 10 + tx] * t2[by * 100 + bx * 10 + (l + 1)];
    nv = nv + A[(l + 2) * 10 + tx] * t2[by * 100 + bx * 10 + (l + 2)];
    nv = nv + A[(l + 3) * 10 + tx] * t2[by * 100 + bx * 10 + (l + 3)];
    nv = nv + A[(l + 4) * 10 + tx] * t2[by * 100 + bx * 10 + (l + 4)];
  }
  V[by * 100 + bx * 10 + tx] = nv;
}

// data stays resident on the GPU across these calls
ex_0_GPU_0<<<dim3(10, 1), dim3(10, 10)>>>(t1, B, U);
ex_0_GPU_1<<<dim3(10, 10), dim3(10, 1)>>>(t2, C, t1);
ex_0_GPU_2<<<dim3(10, 10), dim3(10, 1)>>>(V, A, t2);
