//! Cache-tiled sequential executor.
//!
//! The paper's CPU baselines are untiled loop nests; real tensor libraries
//! tile. This executor splits every loop with a large extent into
//! (tile, intra-tile) pairs and walks tiles in the outer odometer so the
//! working set of each tile stays cache-resident — a genuinely faster way
//! to run the big contractions on the host, used by the Criterion
//! machinery benchmarks as the "tuned CPU" reference point.

use tcr::program::{TcrOp, TcrProgram};
use tensor::Tensor;

/// Loops longer than this get tiled.
pub const DEFAULT_TILE: usize = 32;

fn strides_for(
    program: &TcrProgram,
    array_id: usize,
    loop_vars: &[tensor::IndexVar],
) -> Vec<usize> {
    loop_vars
        .iter()
        .map(|v| {
            program.arrays[array_id]
                .stride_of(v, &program.dims)
                .unwrap_or(0)
        })
        .collect()
}

/// Executes one statement with loop tiling at `tile`.
pub fn execute_op_tiled(program: &TcrProgram, op: &TcrOp, buffers: &mut [Vec<f64>], tile: usize) {
    assert!(tile >= 1);
    let loop_vars = program.loop_vars(op);
    let extents: Vec<usize> = loop_vars.iter().map(|v| program.dims[v]).collect();
    let out_strides = strides_for(program, op.output, &loop_vars);
    let in_strides: Vec<Vec<usize>> = op
        .inputs
        .iter()
        .map(|&id| strides_for(program, id, &loop_vars))
        .collect();

    let n = loop_vars.len();
    // Tile bases: per loop, the list of (start, len) tiles.
    let tiles: Vec<Vec<(usize, usize)>> = extents
        .iter()
        .map(|&e| {
            let mut v = Vec::new();
            let mut s = 0;
            while s < e {
                v.push((s, tile.min(e - s)));
                s += tile;
            }
            v
        })
        .collect();
    let n_tiles: Vec<usize> = tiles.iter().map(|t| t.len()).collect();

    let mut out = std::mem::take(&mut buffers[op.output]);
    {
        let ins: Vec<&[f64]> = op.inputs.iter().map(|&id| buffers[id].as_slice()).collect();
        // Outer odometer over tiles.
        let mut t_idx = vec![0usize; n];
        let total_tiles: usize = n_tiles.iter().product();
        for _ in 0..total_tiles.max(1) {
            let starts: Vec<usize> = (0..n).map(|d| tiles[d][t_idx[d]].0).collect();
            let lens: Vec<usize> = (0..n).map(|d| tiles[d][t_idx[d]].1).collect();
            // Inner odometer within the tile, with incremental offsets.
            let base_out: usize = (0..n).map(|d| starts[d] * out_strides[d]).sum();
            let base_in: Vec<usize> = in_strides
                .iter()
                .map(|s| (0..n).map(|d| starts[d] * s[d]).sum())
                .collect();
            let trip: usize = lens.iter().product();
            let mut idx = vec![0usize; n];
            let mut off_out = base_out;
            let mut offs_in = base_in.clone();
            for _ in 0..trip.max(1) {
                let mut prod = op.coefficient;
                for (k, inp) in ins.iter().enumerate() {
                    prod *= inp[offs_in[k]];
                }
                out[off_out] += prod;
                for d in (0..n).rev() {
                    idx[d] += 1;
                    off_out += out_strides[d];
                    for (k, s) in in_strides.iter().enumerate() {
                        offs_in[k] += s[d];
                    }
                    if idx[d] < lens[d] {
                        break;
                    }
                    off_out -= out_strides[d] * lens[d];
                    for (k, s) in in_strides.iter().enumerate() {
                        offs_in[k] -= s[d] * lens[d];
                    }
                    idx[d] = 0;
                }
            }
            // Advance the tile odometer.
            for d in (0..n).rev() {
                t_idx[d] += 1;
                if t_idx[d] < n_tiles[d] {
                    break;
                }
                t_idx[d] = 0;
            }
        }
    }
    buffers[op.output] = out;
}

/// Executes the whole program with tiling.
pub fn execute_tiled(program: &TcrProgram, inputs: &[&Tensor], tile: usize) -> Tensor {
    let input_ids = program.input_ids();
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    let mut buffers: Vec<Vec<f64>> = program
        .arrays
        .iter()
        .map(|a| vec![0.0; a.len(&program.dims)])
        .collect();
    for (k, id) in input_ids.iter().enumerate() {
        buffers[*id].copy_from_slice(inputs[k].data());
    }
    for op in &program.ops {
        execute_op_tiled(program, op, &mut buffers, tile);
    }
    let out_id = program.output_id();
    Tensor::from_vec(
        program.arrays[out_id].shape(&program.dims),
        std::mem::take(&mut buffers[out_id]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_sequential;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn matmul(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("mm", &c, &fs[0], &dims)
    }

    #[test]
    fn tiled_matches_sequential_at_various_tiles() {
        let p = matmul(37); // deliberately not a multiple of any tile
        let a = Tensor::random(Shape::new([37, 37]), 1);
        let b = Tensor::random(Shape::new([37, 37]), 2);
        let expect = execute_sequential(&p, &[&a, &b]);
        for tile in [1, 5, 16, 32, 64] {
            let got = execute_tiled(&p, &[&a, &b], tile);
            assert!(expect.approx_eq(&got, 1e-12), "tile = {tile}");
        }
    }

    #[test]
    fn tiled_matches_on_deep_nests() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m"], 5);
        let c = Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into()],
            terms: vec![
                TensorRef::new("A", &["i", "l", "m"]),
                TensorRef::new("B", &["l", "m", "j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = TcrProgram::from_factorization("deep", &c, &fs[0], &dims);
        let a = Tensor::random(Shape::new([5, 5, 5]), 3);
        let b = Tensor::random(Shape::new([5, 5, 5, 5]), 4);
        let expect = execute_sequential(&p, &[&a, &b]);
        let got = execute_tiled(&p, &[&a, &b], 3);
        assert!(expect.approx_eq(&got, 1e-12));
    }

    #[test]
    fn tile_larger_than_extent_is_one_tile() {
        let p = matmul(8);
        let a = Tensor::random(Shape::new([8, 8]), 5);
        let b = Tensor::random(Shape::new([8, 8]), 6);
        let expect = execute_sequential(&p, &[&a, &b]);
        let got = execute_tiled(&p, &[&a, &b], 1024);
        assert!(expect.approx_eq(&got, 1e-12));
    }
}
