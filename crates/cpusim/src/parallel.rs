//! Multi-threaded executor — the OpenMP-analog baseline.
//!
//! The paper's OpenMP comparison parallelizes "an outermost loop" (§VI-B).
//! This executor does the same: for each statement the outermost *output*
//! loop is chunked across a crossbeam scoped-thread team; each thread owns a
//! disjoint contiguous slice of the output (the outermost output index is
//! the slowest-varying one in row-major layout), so no synchronization is
//! needed beyond the implicit barrier between statements.

use tcr::program::{TcrOp, TcrProgram};
use tensor::Tensor;

fn strides_for(
    program: &TcrProgram,
    array_id: usize,
    loop_vars: &[tensor::IndexVar],
) -> Vec<usize> {
    loop_vars
        .iter()
        .map(|v| {
            program.arrays[array_id]
                .stride_of(v, &program.dims)
                .unwrap_or(0)
        })
        .collect()
}

/// Executes one statement with `threads` workers splitting the outermost
/// output loop.
pub fn execute_op_parallel(
    program: &TcrProgram,
    op: &TcrOp,
    buffers: &mut [Vec<f64>],
    threads: usize,
) {
    assert!(threads >= 1);
    let out_decl = &program.arrays[op.output];
    let loop_vars = program.loop_vars(op);
    // A rank-0 output (full reduction into a scalar) has no parallel loop
    // to split; run it sequentially.
    let Some(first) = out_decl.indices.first() else {
        crate::exec::execute_op(program, op, buffers);
        return;
    };
    let outer_extent = program.dims[first];
    let out_shape = out_decl.shape(&program.dims);
    let chunk_elems = out_shape.strides()[0];

    // Remaining loops (everything except the outermost output index).
    let inner_vars: Vec<tensor::IndexVar> =
        loop_vars.iter().filter(|v| *v != first).cloned().collect();
    let extents: Vec<usize> = inner_vars.iter().map(|v| program.dims[v]).collect();
    let out_strides = strides_for(program, op.output, &inner_vars);
    let in_strides: Vec<Vec<usize>> = op
        .inputs
        .iter()
        .map(|&id| strides_for(program, id, &inner_vars))
        .collect();
    let in_outer_stride: Vec<usize> = op
        .inputs
        .iter()
        .map(|&id| {
            program.arrays[id]
                .stride_of(first, &program.dims)
                .unwrap_or(0)
        })
        .collect();

    let coeff = op.coefficient;
    let mut out = std::mem::take(&mut buffers[op.output]);
    {
        let ins: Vec<&[f64]> = op.inputs.iter().map(|&id| buffers[id].as_slice()).collect();
        let trip: usize = extents.iter().product();
        let n = inner_vars.len();

        // Static schedule: contiguous ranges of the outer loop per thread.
        let chunks: Vec<(usize, &mut [f64])> = {
            let mut v = Vec::new();
            let mut rest = out.as_mut_slice();
            let per = outer_extent.div_ceil(threads);
            let mut i0 = 0;
            while i0 < outer_extent {
                let span = per.min(outer_extent - i0);
                let (head, tail) = rest.split_at_mut(span * chunk_elems);
                v.push((i0, head));
                rest = tail;
                i0 += span;
            }
            v
        };

        crossbeam::thread::scope(|scope| {
            for (i0, chunk) in chunks {
                let ins = ins.clone();
                let extents = &extents;
                let out_strides = &out_strides;
                let in_strides = &in_strides;
                let in_outer_stride = &in_outer_stride;
                scope.spawn(move |_| {
                    let span = chunk.len() / chunk_elems;
                    for di in 0..span {
                        let i = i0 + di;
                        let mut idx = vec![0usize; n];
                        let mut off_out = di * chunk_elems;
                        let mut offs_in: Vec<usize> =
                            in_outer_stride.iter().map(|s| s * i).collect();
                        for _ in 0..trip.max(1) {
                            let mut prod = coeff;
                            for (k, inp) in ins.iter().enumerate() {
                                prod *= inp[offs_in[k]];
                            }
                            chunk[off_out] += prod;
                            for d in (0..n).rev() {
                                idx[d] += 1;
                                off_out += out_strides[d];
                                for (k, s) in in_strides.iter().enumerate() {
                                    offs_in[k] += s[d];
                                }
                                if idx[d] < extents[d] {
                                    break;
                                }
                                off_out -= out_strides[d] * extents[d];
                                for (k, s) in in_strides.iter().enumerate() {
                                    offs_in[k] -= s[d] * extents[d];
                                }
                                idx[d] = 0;
                            }
                        }
                    }
                });
            }
        })
        .unwrap_or_else(|_| panic!("worker thread panicked"));
    }
    buffers[op.output] = out;
}

/// Executes the whole program with a thread team per statement.
pub fn execute_parallel(program: &TcrProgram, inputs: &[&Tensor], threads: usize) -> Tensor {
    let input_ids = program.input_ids();
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    let mut buffers: Vec<Vec<f64>> = program
        .arrays
        .iter()
        .map(|a| vec![0.0; a.len(&program.dims)])
        .collect();
    for (k, id) in input_ids.iter().enumerate() {
        buffers[*id].copy_from_slice(inputs[k].data());
    }
    for op in &program.ops {
        execute_op_parallel(program, op, &mut buffers, threads);
    }
    let out_id = program.output_id();
    Tensor::from_vec(
        program.arrays[out_id].shape(&program.dims),
        std::mem::take(&mut buffers[out_id]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute_sequential;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn lower(c: &Contraction, dims: &tensor::IndexMap) -> tcr::TcrProgram {
        let fs = enumerate_factorizations(c, dims);
        tcr::TcrProgram::from_factorization("p", c, &fs[0], dims)
    }

    #[test]
    fn parallel_matches_sequential_matmul() {
        let n = 16;
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let p = lower(&c, &dims);
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let seq = execute_sequential(&p, &[&a, &b]);
        for threads in [1, 2, 4, 7] {
            let par = execute_parallel(&p, &[&a, &b], threads);
            assert!(seq.approx_eq(&par, 1e-12), "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_eqn1() {
        let n = 5;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let p = lower(&c, &dims);
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let cc = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        let seq = execute_sequential(&p, &[&a, &b, &cc, &u]);
        let par = execute_parallel(&p, &[&a, &b, &cc, &u], 4);
        assert!(seq.approx_eq(&par, 1e-12));
    }

    #[test]
    fn more_threads_than_outer_iterations() {
        // Outer extent 3, 8 threads: chunks must still cover everything.
        let dims = uniform_dims(&["i", "j"], 3);
        let c = Contraction {
            output: TensorRef::new("y", &["i"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("b", &["j"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let p = lower(&c, &dims);
        let a = Tensor::random(Shape::new([3, 3]), 9);
        let b = Tensor::random(Shape::new([3]), 10);
        let seq = execute_sequential(&p, &[&a, &b]);
        let par = execute_parallel(&p, &[&a, &b], 8);
        assert!(seq.approx_eq(&par, 1e-12));
    }
}
