//! Real sequential executor for TCR programs.
//!
//! Executes each statement as an explicit loop nest over precomputed
//! strides — structurally the same code a C compiler would see, and
//! independent of the einsum oracle in the `tensor` crate.

use tcr::program::{TcrOp, TcrProgram};
use tensor::Tensor;

/// Stride of each loop variable for one array access (0 = invariant).
fn strides_for(
    program: &TcrProgram,
    array_id: usize,
    loop_vars: &[tensor::IndexVar],
) -> Vec<usize> {
    loop_vars
        .iter()
        .map(|v| {
            program.arrays[array_id]
                .stride_of(v, &program.dims)
                .unwrap_or(0)
        })
        .collect()
}

/// Executes one statement, accumulating into `buffers[op.output]`.
pub fn execute_op(program: &TcrProgram, op: &TcrOp, buffers: &mut [Vec<f64>]) {
    let loop_vars = program.loop_vars(op);
    let extents: Vec<usize> = loop_vars.iter().map(|v| program.dims[v]).collect();
    let out_strides = strides_for(program, op.output, &loop_vars);
    let in_strides: Vec<Vec<usize>> = op
        .inputs
        .iter()
        .map(|&id| strides_for(program, id, &loop_vars))
        .collect();

    let mut out = std::mem::take(&mut buffers[op.output]);
    {
        let ins: Vec<&[f64]> = op.inputs.iter().map(|&id| buffers[id].as_slice()).collect();
        let n = loop_vars.len();
        let trip: usize = extents.iter().product();
        let coeff = op.coefficient;
        let mut idx = vec![0usize; n];
        let mut offs_out = 0usize;
        let mut offs_in = vec![0usize; ins.len()];
        for _ in 0..trip {
            let mut prod = coeff;
            for (k, inp) in ins.iter().enumerate() {
                prod *= inp[offs_in[k]];
            }
            out[offs_out] += prod;
            // Odometer with incremental offset updates.
            for d in (0..n).rev() {
                idx[d] += 1;
                offs_out += out_strides[d];
                for (k, s) in in_strides.iter().enumerate() {
                    offs_in[k] += s[d];
                }
                if idx[d] < extents[d] {
                    break;
                }
                // Wrap this dimension: subtract the full span.
                offs_out -= out_strides[d] * extents[d];
                for (k, s) in in_strides.iter().enumerate() {
                    offs_in[k] -= s[d] * extents[d];
                }
                idx[d] = 0;
            }
        }
    }
    buffers[op.output] = out;
}

/// Executes the whole program sequentially. `inputs[k]` matches
/// `program.input_ids()[k]`.
pub fn execute_sequential(program: &TcrProgram, inputs: &[&Tensor]) -> Tensor {
    let input_ids = program.input_ids();
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    let mut buffers: Vec<Vec<f64>> = program
        .arrays
        .iter()
        .map(|a| vec![0.0; a.len(&program.dims)])
        .collect();
    for (k, id) in input_ids.iter().enumerate() {
        buffers[*id].copy_from_slice(inputs[k].data());
    }
    for op in &program.ops {
        execute_op(program, op, &mut buffers);
    }
    let out_id = program.output_id();
    Tensor::from_vec(
        program.arrays[out_id].shape(&program.dims),
        std::mem::take(&mut buffers[out_id]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn sequential_matches_oracle_on_all_eqn1_versions() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1();
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let cc = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        let expect = c.to_einsum(&dims).evaluate(&[&a, &b, &cc, &u]);
        for f in enumerate_factorizations(&c, &dims) {
            let p = tcr::TcrProgram::from_factorization("ex", &c, &f, &dims);
            let got = execute_sequential(&p, &[&a, &b, &cc, &u]);
            assert!(expect.approx_eq(&got, 1e-10), "version {} diverges", f.key);
        }
    }

    #[test]
    fn odometer_handles_rank_mixtures() {
        // y[i] = Sum(j, A[i,j] b[j]) — matrix-vector with a rank-1 operand.
        let dims = uniform_dims(&["i", "j"], 7);
        let c = Contraction {
            output: TensorRef::new("y", &["i"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("b", &["j"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("mv", &c, &fs[0], &dims);
        let a = Tensor::random(Shape::new([7, 7]), 5);
        let b = Tensor::random(Shape::new([7]), 6);
        let got = execute_sequential(&p, &[&a, &b]);
        let expect = c.to_einsum(&dims).evaluate(&[&a, &b]);
        assert!(expect.approx_eq(&got, 1e-12));
    }
}
