//! Analytic Haswell-class CPU timing model.
//!
//! Used when regenerating the paper's tables so that the CPU side of every
//! CPU-vs-GPU comparison is deterministic. The model is a two-bound
//! roofline:
//!
//! - **compute**: flops over an effective rate that decays with loop-nest
//!   depth (deeper tensor nests vectorize and pipeline worse — the paper's
//!   NWChem kernels run at 2.5–5.6 GF on one core while the matmul-shaped
//!   Nekbone core reaches 7.8 GF),
//! - **memory**: streamed bytes (output read+write, inputs read once per
//!   consuming statement) over a per-core STREAM-like bandwidth.
//!
//! Multi-threaded execution scales the compute bound nearly linearly and
//! the memory bound by the shared-bandwidth ratio, reproducing the paper's
//! observation that the memory-bound S1 kernels gain almost nothing from
//! 4 OpenMP threads (2.47 → 2.61 GF).

use tcr::program::TcrProgram;

/// CPU model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuModel {
    pub name: &'static str,
    pub clock_ghz: f64,
    /// Effective flops/cycle for a shallow (≤4-deep) contraction nest.
    pub base_flops_per_cycle: f64,
    /// Single-core streamed bandwidth, GB/s.
    pub core_bw_gbs: f64,
    /// Whole-socket bandwidth over single-core bandwidth.
    pub socket_bw_ratio: f64,
    /// Per-thread parallel efficiency (fork/join and imbalance losses).
    pub parallel_efficiency: f64,
    /// Compute-rate multiplier when the whole working set fits in cache.
    pub cache_boost: f64,
    /// Cache capacity for the boost test, bytes.
    pub cache_bytes: f64,
}

impl CpuModel {
    /// The paper's baseline: a Haswell desktop part running *tuned* code
    /// (icc-vectorized loops, the Table IV OpenMP comparison).
    pub fn haswell() -> Self {
        CpuModel {
            name: "Haswell",
            clock_ghz: 3.3,
            base_flops_per_cycle: 2.5,
            core_bw_gbs: 14.0,
            socket_bw_ratio: 1.6,
            parallel_efficiency: 0.9,
            cache_boost: 1.0,
            cache_bytes: 256.0 * 1024.0,
        }
    }

    /// The same part running *naive* sequential loop nests — the Table II
    /// "speedup over sequential" baseline. Scalar code, but tiny working
    /// sets (like Eqn.(1)'s 18 KB) run entirely from cache and look fast,
    /// which is why the paper's Eqn.(1) GPU speedup is below 1.
    pub fn haswell_naive() -> Self {
        CpuModel {
            name: "Haswell (naive)",
            clock_ghz: 3.3,
            base_flops_per_cycle: 0.9,
            core_bw_gbs: 10.0,
            socket_bw_ratio: 1.6,
            parallel_efficiency: 0.9,
            cache_boost: 1.8,
            cache_bytes: 256.0 * 1024.0,
        }
    }
}

/// Timing result for one program on the CPU model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuTiming {
    pub time_s: f64,
    pub compute_s: f64,
    pub memory_s: f64,
    pub flops: u64,
}

impl CpuTiming {
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.time_s / 1e9
    }
}

/// Deepest loop nest of the program (output rank + summation indices).
fn max_loop_depth(program: &TcrProgram) -> usize {
    program
        .ops
        .iter()
        .map(|op| program.loop_vars(op).len())
        .max()
        .unwrap_or(1)
}

/// Total footprint of every array of the program, bytes.
fn footprint_bytes(program: &TcrProgram) -> f64 {
    program
        .arrays
        .iter()
        .map(|a| 8.0 * a.len(&program.dims) as f64)
        .sum()
}

/// Streamed bytes: every statement reads its inputs once and
/// reads+writes its output once (accumulation).
fn streamed_bytes(program: &TcrProgram) -> f64 {
    let mut bytes = 0.0;
    for op in &program.ops {
        for &id in &op.inputs {
            bytes += 8.0 * program.arrays[id].len(&program.dims) as f64;
        }
        bytes += 2.0 * 8.0 * program.arrays[op.output].len(&program.dims) as f64;
    }
    bytes
}

/// Times a program on `threads` cores of `model`.
pub fn time_cpu(program: &TcrProgram, model: &CpuModel, threads: usize) -> CpuTiming {
    assert!(threads >= 1);
    let flops = program.flops();
    let depth = max_loop_depth(program) as f64;
    // Deep nests lose vectorization/pipelining efficiency; cache-resident
    // working sets gain.
    let mut eff = model.base_flops_per_cycle * (4.0 / depth.max(4.0));
    if footprint_bytes(program) <= model.cache_bytes {
        eff *= model.cache_boost;
    }
    let compute_rate_1 = model.clock_ghz * 1e9 * eff;
    let compute_scale = 1.0 + (threads as f64 - 1.0) * model.parallel_efficiency;
    let compute_s = flops as f64 / (compute_rate_1 * compute_scale);

    let bw = if threads == 1 {
        model.core_bw_gbs
    } else {
        // Shared bandwidth saturates quickly.
        model.core_bw_gbs
            * (1.0 + (model.socket_bw_ratio - 1.0) * ((threads - 1) as f64 / 3.0).min(1.0))
    };
    let memory_s = streamed_bytes(program) / (bw * 1e9);

    CpuTiming {
        time_s: compute_s.max(memory_s),
        compute_s,
        memory_s,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;

    fn matmul(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("mm", &c, &fs[0], &dims)
    }

    #[test]
    fn compute_bound_matmul_scales_with_threads() {
        let p = matmul(256);
        let m = CpuModel::haswell();
        let t1 = time_cpu(&p, &m, 1);
        let t4 = time_cpu(&p, &m, 4);
        assert!(t1.compute_s > t1.memory_s, "256^3 matmul is compute bound");
        let scale = t1.time_s / t4.time_s;
        assert!(
            (3.0..=4.0).contains(&scale),
            "4 threads should give ~3.7x: {scale}"
        );
    }

    #[test]
    fn single_core_rate_is_haswell_like() {
        let p = matmul(256);
        let m = CpuModel::haswell();
        let t = time_cpu(&p, &m, 1);
        let gf = t.gflops();
        assert!((4.0..=12.0).contains(&gf), "1-core matmul {gf} GF");
    }

    #[test]
    fn memory_bound_workload_barely_scales() {
        // An outer product writes a big output with almost no flops.
        let dims = uniform_dims(&["i", "j", "k", "l"], 32);
        let c = Contraction {
            output: TensorRef::new("T", &["i", "j", "k", "l"]),
            sum_indices: vec![],
            terms: vec![
                TensorRef::new("a", &["i", "j"]),
                TensorRef::new("b", &["k", "l"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = TcrProgram::from_factorization("op", &c, &fs[0], &dims);
        let m = CpuModel::haswell();
        let t1 = time_cpu(&p, &m, 1);
        let t4 = time_cpu(&p, &m, 4);
        assert!(t1.memory_s > t1.compute_s, "outer product is memory bound");
        let scale = t1.time_s / t4.time_s;
        assert!(scale < 2.0, "memory-bound scaling must be poor: {scale}");
    }

    #[test]
    fn deep_nests_run_slower_per_flop() {
        let shallow = matmul(64);
        // 6-deep nest with the same flop count order.
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 8);
        let c = Contraction {
            output: TensorRef::new("V", &["i", "j", "k", "l", "m"]),
            sum_indices: vec!["n".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j", "k", "n"]),
                TensorRef::new("B", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let deep = TcrProgram::from_factorization("deep", &c, &fs[0], &dims);
        let m = CpuModel::haswell();
        let gf_shallow =
            time_cpu(&shallow, &m, 1).flops as f64 / time_cpu(&shallow, &m, 1).compute_s / 1e9;
        let gf_deep = time_cpu(&deep, &m, 1).flops as f64 / time_cpu(&deep, &m, 1).compute_s / 1e9;
        assert!(gf_deep < gf_shallow);
    }
}
