//! CPU baselines: real executors and an analytic Haswell timing model.
//!
//! The paper compares its GPU code against sequential and 4-thread OpenMP
//! execution on an Intel Haswell. This crate provides both halves of that
//! comparison for the reproduction:
//!
//! - [`exec`]: a real single-threaded loop-nest executor for TCR programs
//!   (independent of the einsum oracle, so the two cross-check each other),
//! - [`parallel`]: a real multi-threaded executor that parallelizes the
//!   outermost output loop of every statement across a thread pool
//!   (crossbeam scoped threads) — the analog of `#pragma omp parallel for`
//!   on the outermost loop, which is what the paper's OpenMP versions do,
//! - [`model`]: a deterministic Haswell-class timing model (1 core and
//!   N cores) used when generating the paper's tables, so that CPU-vs-GPU
//!   comparisons do not depend on the machine running this reproduction.

pub mod exec;
pub mod model;
pub mod parallel;
pub mod tiled;

pub use exec::execute_sequential;
pub use model::{CpuModel, CpuTiming};
pub use parallel::execute_parallel;
pub use tiled::execute_tiled;
