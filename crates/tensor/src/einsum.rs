//! Reference Einstein-summation evaluator (the correctness oracle).
//!
//! [`EinsumSpec`] describes a single summation statement such as
//! `V[i,j,k] += A[l,k] * B[m,j] * C[n,i] * U[l,m,n]` and evaluates it by
//! brute-force iteration over the *joint* index space (output indices plus
//! summation indices). Every transformed kernel in the pipeline is checked
//! against this evaluator, so it is written for obviousness, not speed.

use crate::index::{IndexMap, IndexVar};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// One Einstein-summation statement with an arbitrary number of operands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EinsumSpec {
    /// Index labels of each input operand, e.g. `[["l","k"], ["m","j"]]`.
    pub inputs: Vec<Vec<IndexVar>>,
    /// Index labels of the output tensor.
    pub output: Vec<IndexVar>,
    /// Extent of every index appearing anywhere in the statement.
    pub dims: IndexMap,
}

impl EinsumSpec {
    /// Builds a spec from `&str` labels. Panics if an index has no extent in
    /// `dims` or the output mentions an index absent from all inputs.
    pub fn new(inputs: &[&[&str]], output: &[&str], dims: IndexMap) -> Self {
        let inputs: Vec<Vec<IndexVar>> = inputs
            .iter()
            .map(|labels| labels.iter().map(|l| IndexVar::new(*l)).collect())
            .collect();
        let output: Vec<IndexVar> = output.iter().map(|l| IndexVar::new(*l)).collect();
        let spec = EinsumSpec {
            inputs,
            output,
            dims,
        };
        spec.validate();
        spec
    }

    /// Parses numpy-style einsum notation with single-letter indices, e.g.
    /// `"ij,jk->ik"`. Every index takes its extent from `dims`.
    pub fn parse(notation: &str, dims: IndexMap) -> Result<Self, String> {
        let (lhs, rhs) = notation
            .split_once("->")
            .ok_or_else(|| format!("missing '->' in {notation:?}"))?;
        let parse_side = |side: &str| -> Result<Vec<IndexVar>, String> {
            side.trim()
                .chars()
                .filter(|c| !c.is_whitespace())
                .map(|c| {
                    if c.is_ascii_alphabetic() {
                        Ok(IndexVar::new(c.to_string()))
                    } else {
                        Err(format!("bad index character {c:?}"))
                    }
                })
                .collect()
        };
        let inputs: Vec<Vec<IndexVar>> =
            lhs.split(',').map(parse_side).collect::<Result<_, _>>()?;
        let output = parse_side(rhs)?;
        if inputs.is_empty() || inputs.iter().any(|i| i.is_empty()) {
            return Err("empty operand".to_string());
        }
        for labels in inputs.iter().chain(std::iter::once(&output)) {
            for l in labels {
                if !dims.contains_key(l) {
                    return Err(format!("index {l} has no extent in dims"));
                }
            }
        }
        for l in &output {
            if !inputs.iter().any(|op| op.contains(l)) {
                return Err(format!("output index {l} appears in no input"));
            }
        }
        Ok(EinsumSpec {
            inputs,
            output,
            dims,
        })
    }

    fn validate(&self) {
        for labels in self.inputs.iter().chain(std::iter::once(&self.output)) {
            for l in labels {
                assert!(self.dims.contains_key(l), "index {l} has no extent in dims");
            }
        }
        for l in &self.output {
            assert!(
                self.inputs.iter().any(|op| op.contains(l)),
                "output index {l} does not appear in any input"
            );
        }
    }

    /// Indices that are summed over: present in some input, absent from the
    /// output. Returned in deterministic (lexicographic) order.
    pub fn summation_indices(&self) -> Vec<IndexVar> {
        let mut sums: Vec<IndexVar> = self
            .dims
            .keys()
            .filter(|ix| !self.output.contains(ix) && self.inputs.iter().any(|op| op.contains(ix)))
            .cloned()
            .collect();
        sums.sort();
        sums
    }

    /// Shape of input operand `k` under `dims`.
    pub fn input_shape(&self, k: usize) -> Shape {
        Shape::new(
            self.inputs[k]
                .iter()
                .map(|ix| self.dims[ix])
                .collect::<Vec<_>>(),
        )
    }

    /// Shape of the output tensor under `dims`.
    pub fn output_shape(&self) -> Shape {
        Shape::new(
            self.output
                .iter()
                .map(|ix| self.dims[ix])
                .collect::<Vec<_>>(),
        )
    }

    /// Size of the joint iteration space (output ∪ summation indices).
    pub fn joint_space(&self) -> usize {
        let mut all: Vec<&IndexVar> = self.output.iter().collect();
        for s in self.summation_indices() {
            // summation indices are disjoint from output indices
            let (key, _) = self
                .dims
                .get_key_value(&s)
                .unwrap_or_else(|| panic!("summation index {} has no extent", s.name()));
            all.push(key);
        }
        all.iter().map(|ix| self.dims[*ix]).product()
    }

    /// Floating-point operations of the naive evaluation: per joint point,
    /// `k-1` multiplies and one add for `k` operands.
    pub fn flop_count(&self) -> u64 {
        let per_point = self.inputs.len() as u64; // (k-1) muls + 1 add
        per_point * self.joint_space() as u64
    }

    /// Evaluates the statement, accumulating into a fresh zero tensor.
    pub fn evaluate(&self, operands: &[&Tensor]) -> Tensor {
        assert_eq!(operands.len(), self.inputs.len(), "operand count mismatch");
        for (k, op) in operands.iter().enumerate() {
            assert_eq!(
                *op.shape(),
                self.input_shape(k),
                "operand {k} shape mismatch"
            );
        }

        // The joint loop order is: output indices first, then summation
        // indices; extents looked up once.
        let sums = self.summation_indices();
        let loop_vars: Vec<IndexVar> = self.output.iter().cloned().chain(sums).collect();
        let extents: Vec<usize> = loop_vars.iter().map(|ix| self.dims[ix]).collect();
        let joint = Shape::new(extents);

        // Precompute, for every operand (and the output), the position of
        // each of its labels inside `loop_vars`.
        let positions = |labels: &[IndexVar]| -> Vec<usize> {
            labels
                .iter()
                .map(|l| {
                    loop_vars
                        .iter()
                        .position(|v| v == l)
                        .unwrap_or_else(|| panic!("label {} missing from loop order", l.name()))
                })
                .collect()
        };
        let in_pos: Vec<Vec<usize>> = self.inputs.iter().map(|l| positions(l)).collect();
        let out_pos: Vec<usize> = positions(&self.output);

        let mut out = Tensor::zeros(self.output_shape());
        let out_shape = out.shape().clone();
        let mut scratch = Vec::new();
        for point in joint.iter() {
            let mut prod = 1.0;
            for (k, op) in operands.iter().enumerate() {
                scratch.clear();
                scratch.extend(in_pos[k].iter().map(|&p| point[p]));
                prod *= op.get(&scratch);
            }
            scratch.clear();
            scratch.extend(out_pos.iter().map(|&p| point[p]));
            let off = out_shape.linearize(&scratch);
            out.data_mut()[off] += prod;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::uniform_dims;

    fn dims2(n: usize) -> IndexMap {
        uniform_dims(&["i", "j", "k"], n)
    }

    #[test]
    fn matmul_matches_manual() {
        // C[i,k] = A[i,j] * B[j,k]
        let n = 4;
        let spec = EinsumSpec::new(&[&["i", "j"], &["j", "k"]], &["i", "k"], dims2(n));
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let c = spec.evaluate(&[&a, &b]);
        for i in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += a.get(&[i, j]) * b.get(&[j, k]);
                }
                assert!((c.get(&[i, k]) - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn inner_product_is_scalar() {
        let dims = uniform_dims(&["i"], 5);
        let spec = EinsumSpec::new(&[&["i"], &["i"]], &[], dims);
        let u = Tensor::from_vec(Shape::new([5]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let v = Tensor::from_vec(Shape::new([5]), vec![1.0; 5]);
        let y = spec.evaluate(&[&u, &v]);
        assert_eq!(y.shape().rank(), 0);
        assert!((y.data()[0] - 15.0).abs() < 1e-12);
    }

    #[test]
    fn outer_product_no_summation() {
        let dims = uniform_dims(&["i", "j"], 3);
        let spec = EinsumSpec::new(&[&["i"], &["j"]], &["i", "j"], dims);
        assert!(spec.summation_indices().is_empty());
        let u = Tensor::from_vec(Shape::new([3]), vec![1.0, 2.0, 3.0]);
        let v = Tensor::from_vec(Shape::new([3]), vec![10.0, 20.0, 30.0]);
        let o = spec.evaluate(&[&u, &v]);
        assert_eq!(o.get(&[2, 1]), 60.0);
    }

    #[test]
    fn four_operand_contraction_associativity() {
        // V[i,j,k] = A[l,k] B[m,j] C[n,i] U[l,m,n] evaluated naively must
        // equal the two-step factored evaluation.
        let n = 3;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let naive = EinsumSpec::new(
            &[&["l", "k"], &["m", "j"], &["n", "i"], &["l", "m", "n"]],
            &["i", "j", "k"],
            dims.clone(),
        );
        let a = Tensor::random(Shape::new([n, n]), 10);
        let b = Tensor::random(Shape::new([n, n]), 11);
        let c = Tensor::random(Shape::new([n, n]), 12);
        let u = Tensor::random(Shape::new([n, n, n]), 13);
        let v_naive = naive.evaluate(&[&a, &b, &c, &u]);

        // t1[i,l,m] = C[n,i] U[l,m,n]
        let t1s = EinsumSpec::new(
            &[&["n", "i"], &["l", "m", "n"]],
            &["i", "l", "m"],
            dims.clone(),
        );
        let t1 = t1s.evaluate(&[&c, &u]);
        // t2[j,i,l] = B[m,j] t1[i,l,m]
        let t2s = EinsumSpec::new(
            &[&["m", "j"], &["i", "l", "m"]],
            &["j", "i", "l"],
            dims.clone(),
        );
        let t2 = t2s.evaluate(&[&b, &t1]);
        // V[i,j,k] = A[l,k] t2[j,i,l]
        let vs = EinsumSpec::new(&[&["l", "k"], &["j", "i", "l"]], &["i", "j", "k"], dims);
        let v_fact = vs.evaluate(&[&a, &t2]);

        assert!(v_naive.approx_eq(&v_fact, 1e-10));
    }

    #[test]
    fn flop_count_naive_vs_factored() {
        let n = 10;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let naive = EinsumSpec::new(
            &[&["l", "k"], &["m", "j"], &["n", "i"], &["l", "m", "n"]],
            &["i", "j", "k"],
            dims,
        );
        // joint space is N^6, 4 ops per point
        assert_eq!(naive.flop_count(), 4 * 10u64.pow(6));
    }

    #[test]
    fn parse_notation_matmul() {
        let spec = EinsumSpec::parse("ij,jk->ik", uniform_dims(&["i", "j", "k"], 4)).unwrap();
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.output.len(), 2);
        assert_eq!(spec.summation_indices(), vec![IndexVar::new("j")]);
        // Same result as the explicitly-built spec.
        let explicit = EinsumSpec::new(
            &[&["i", "j"], &["j", "k"]],
            &["i", "k"],
            uniform_dims(&["i", "j", "k"], 4),
        );
        let a = Tensor::random(Shape::new([4, 4]), 1);
        let b = Tensor::random(Shape::new([4, 4]), 2);
        assert!(spec
            .evaluate(&[&a, &b])
            .approx_eq(&explicit.evaluate(&[&a, &b]), 1e-15));
    }

    #[test]
    fn parse_notation_scalar_output() {
        let spec = EinsumSpec::parse("i,i->", uniform_dims(&["i"], 3)).unwrap();
        assert_eq!(spec.output.len(), 0);
    }

    #[test]
    fn parse_notation_errors() {
        let d = uniform_dims(&["i", "j"], 3);
        assert!(EinsumSpec::parse("ij,jk", d.clone()).is_err()); // no ->
        assert!(EinsumSpec::parse("i1->i", d.clone()).is_err()); // bad char
        assert!(EinsumSpec::parse("ik->i", d.clone()).is_err()); // k no extent
        assert!(EinsumSpec::parse("i->j", d.clone()).is_err()); // dangling out
        assert!(EinsumSpec::parse(",->", d).is_err()); // empty operand
    }

    #[test]
    #[should_panic(expected = "no extent")]
    fn missing_dim_panics() {
        let spec = EinsumSpec::new(&[&["i"]], &["i"], IndexMap::new());
        let _ = spec;
    }

    #[test]
    #[should_panic(expected = "does not appear")]
    fn dangling_output_index_panics() {
        let dims = uniform_dims(&["i", "j"], 2);
        let _ = EinsumSpec::new(&[&["i"]], &["j"], dims);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_operand_shape_panics() {
        let dims = uniform_dims(&["i", "j"], 3);
        let spec = EinsumSpec::new(&[&["i", "j"]], &["i", "j"], dims);
        let bad = Tensor::zeros(Shape::new([2, 2]));
        let _ = spec.evaluate(&[&bad]);
    }
}
