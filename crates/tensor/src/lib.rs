//! Dense tensor substrate for the Barracuda reproduction.
//!
//! This crate provides the storage layer and the *correctness oracle* used by
//! every other crate in the workspace:
//!
//! - [`Shape`]: multi-dimensional extents with row-major strides,
//! - [`Tensor`]: a dense, row-major `f64` tensor,
//! - [`EinsumSpec`]: a reference Einstein-summation evaluator that computes a
//!   multi-operand contraction by brute-force iteration over the full index
//!   space. Everything the optimizing pipeline produces is validated against
//!   this evaluator.
//!
//! The tensors here are deliberately simple. The paper targets *small*
//! tensors (extents of O(1)–O(10s)), so clarity and auditability of the
//! oracle matter more than raw speed.

pub mod einsum;
pub mod index;
pub mod shape;
pub mod tensor;

pub use einsum::EinsumSpec;
pub use index::{IndexMap, IndexVar};
pub use shape::Shape;
pub use tensor::Tensor;
