//! Symbolic index variables (`i`, `j`, `h3`, `p6`, ...) and index→extent maps.

use std::collections::BTreeMap;
use std::fmt;

/// A named loop/tensor index variable.
///
/// Index names are short strings; the spectral-element kernels use single
/// letters (`i`, `l`, `m`), while the NWChem CCSD(T) kernels use hole/particle
/// names (`h1`, `p6`). Ordering is lexicographic, which gives deterministic
/// iteration everywhere a set of indices is enumerated.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexVar(pub String);

impl IndexVar {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "index name may not be empty");
        IndexVar(name)
    }

    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for IndexVar {
    fn from(s: &str) -> Self {
        IndexVar::new(s)
    }
}

impl From<String> for IndexVar {
    fn from(s: String) -> Self {
        IndexVar::new(s)
    }
}

/// Map from index variable to its extent (the loop trip count).
///
/// A `BTreeMap` keeps ordering deterministic across runs, which matters for
/// reproducible search spaces and tables.
pub type IndexMap = BTreeMap<IndexVar, usize>;

/// Builds an [`IndexMap`] where every listed index has the same extent.
pub fn uniform_dims(names: &[&str], extent: usize) -> IndexMap {
    names.iter().map(|n| (IndexVar::new(*n), extent)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = IndexVar::new("h1");
        let b = IndexVar::new("p6");
        assert!(a < b);
    }

    #[test]
    fn uniform_dims_builds_map() {
        let m = uniform_dims(&["i", "j"], 10);
        assert_eq!(m[&IndexVar::new("i")], 10);
        assert_eq!(m.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_name_rejected() {
        let _ = IndexVar::new("");
    }
}
