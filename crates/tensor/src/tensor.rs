//! Dense row-major `f64` tensor.

use crate::shape::Shape;
use std::fmt;

/// A dense tensor of `f64` values in row-major layout.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Tensor {
    /// All-zero tensor of the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor whose value at each multi-index is computed by `f`.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.iter() {
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Wraps an existing buffer. Panics if the length does not match.
    pub fn from_vec(shape: Shape, data: Vec<f64>) -> Self {
        assert_eq!(
            shape.len(),
            data.len(),
            "buffer length does not match shape"
        );
        Tensor { shape, data }
    }

    /// Deterministic pseudo-random tensor in `[-1, 1)`, seeded per-element so
    /// the same `(shape, seed)` always yields the same contents without
    /// pulling an RNG dependency into the substrate crate.
    pub fn random(shape: Shape, seed: u64) -> Self {
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(splitmix_unit(seed.wrapping_add(i as u64)));
        }
        Tensor { shape, data }
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at a multi-index.
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.shape.linearize(idx)]
    }

    /// Sets the value at a multi-index.
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.shape.linearize(idx);
        self.data[off] = v;
    }

    /// Largest absolute element-wise difference to another tensor of the
    /// same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Approximate equality with a tolerance scaled to the magnitude of the
    /// data (contractions of length-k sums accumulate k rounding errors).
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        let scale = self.data.iter().map(|v| v.abs()).fold(1.0, f64::max);
        self.max_abs_diff(other) <= tol * scale
    }
}

/// SplitMix64 finalizer mapped to `[-1, 1)`.
fn splitmix_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    // Take 53 bits of entropy into [0,1), then shift to [-1,1).
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    2.0 * unit - 1.0
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(len={})", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut t = Tensor::zeros(Shape::new([2, 3]));
        assert_eq!(t.get(&[1, 2]), 0.0);
        t.set(&[1, 2], 4.5);
        assert_eq!(t.get(&[1, 2]), 4.5);
        assert_eq!(t.data()[5], 4.5);
    }

    #[test]
    fn from_fn_row_major() {
        let t = Tensor::from_fn(Shape::new([2, 2]), |idx| (idx[0] * 2 + idx[1]) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(Shape::new([4, 4]), 7);
        let b = Tensor::random(Shape::new([4, 4]), 7);
        let c = Tensor::random(Shape::new([4, 4]), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Tensor::from_vec(Shape::new([2]), vec![1.0, 2.0]);
        let b = Tensor::from_vec(Shape::new([2]), vec![1.0, 2.0 + 1e-13]);
        assert!(a.max_abs_diff(&b) > 0.0);
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-15));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(Shape::new([2, 2]), vec![0.0; 3]);
    }
}
