//! Multi-dimensional shapes with row-major strides.

use std::fmt;

/// Extents of a dense, row-major tensor.
///
/// The last dimension is the fastest-varying one (C layout), matching the
/// paper's assumption ("assuming row-major layout", §IV).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    extents: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents. A rank-0 shape (scalar) is
    /// allowed and has one element.
    pub fn new(extents: impl Into<Vec<usize>>) -> Self {
        let extents = extents.into();
        assert!(
            extents.iter().all(|&e| e > 0),
            "zero-extent dimensions are not supported: {extents:?}"
        );
        Shape { extents }
    }

    /// Number of dimensions (the tensor's rank).
    pub fn rank(&self) -> usize {
        self.extents.len()
    }

    /// Extent of dimension `dim`.
    pub fn extent(&self, dim: usize) -> usize {
        self.extents[dim]
    }

    /// All extents, outermost first.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.extents.iter().product()
    }

    /// True only for the degenerate rank-0 case (which still holds 1 value),
    /// so this always returns false; kept for clippy's `len`/`is_empty` pair.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Row-major strides: `strides[k]` is the linear distance between
    /// consecutive values of index `k`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.extents.len()];
        for k in (0..self.extents.len().saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * self.extents[k + 1];
        }
        strides
    }

    /// Linearizes a multi-index into a flat offset.
    ///
    /// Panics in debug builds when an index is out of range.
    pub fn linearize(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        for (k, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.extents[k], "index {i} out of range {k}");
            off = off * self.extents[k] + i;
        }
        off
    }

    /// Inverse of [`Shape::linearize`].
    pub fn delinearize(&self, mut off: usize) -> Vec<usize> {
        let mut idx = vec![0; self.rank()];
        for k in (0..self.rank()).rev() {
            idx[k] = off % self.extents[k];
            off /= self.extents[k];
        }
        idx
    }

    /// Iterates over every multi-index in row-major order.
    pub fn iter(&self) -> ShapeIter<'_> {
        ShapeIter {
            shape: self,
            next: Some(vec![0; self.rank()]),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.extents)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.extents.iter().map(|e| e.to_string()).collect();
        write!(f, "({})", parts.join("x"))
    }
}

/// Row-major iterator over all multi-indices of a [`Shape`].
pub struct ShapeIter<'a> {
    shape: &'a Shape,
    next: Option<Vec<usize>>,
}

impl Iterator for ShapeIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        let mut k = self.shape.rank();
        loop {
            if k == 0 {
                // Wrapped past the outermost dimension: iteration is done.
                self.next = None;
                break;
            }
            k -= 1;
            succ[k] += 1;
            if succ[k] < self.shape.extent(k) {
                self.next = Some(succ);
                break;
            }
            succ[k] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn linearize_roundtrip() {
        let s = Shape::new([3, 5, 2]);
        for off in 0..s.len() {
            let idx = s.delinearize(off);
            assert_eq!(s.linearize(&idx), off);
        }
    }

    #[test]
    fn linearize_matches_strides() {
        let s = Shape::new([4, 7]);
        let st = s.strides();
        assert_eq!(s.linearize(&[2, 3]), 2 * st[0] + 3 * st[1]);
    }

    #[test]
    fn iter_visits_all_in_order() {
        let s = Shape::new([2, 2]);
        let all: Vec<Vec<usize>> = s.iter().collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn iter_count_matches_len() {
        let s = Shape::new([3, 4, 2]);
        assert_eq!(s.iter().count(), s.len());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(Vec::<usize>::new());
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.linearize(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "zero-extent")]
    fn zero_extent_rejected() {
        let _ = Shape::new([2, 0, 3]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new([10, 10]).to_string(), "(10x10)");
    }
}
