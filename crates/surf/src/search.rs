//! SURF model-based search — Algorithm 2 of the paper.
//!
//! Configurations are opaque `u128` ids drawn from a pool. The caller
//! provides the feature encoding and the (expensive, possibly parallel)
//! evaluation. Lower evaluation values are better (execution time).
//!
//! Two entry points share one driver: [`surf_search`] takes `FnMut`
//! closures and evaluates serially; [`surf_search_parallel`] takes a
//! [`ParallelEvaluator`] and fans each batch (and the surrogate's pool
//! scoring) out over the rayon pool. Both produce *bit-identical* results
//! for pure evaluators: batch membership is decided before evaluation,
//! results are folded in batch order, and parallel maps preserve index
//! order, so no reduction depends on thread scheduling.

use crate::forest::{ExtraTrees, ForestParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Model-confidence stopping rule: stop once the surrogate predicts that
/// fewer than `epsilon` of the remaining configurations lie within
/// `delta` (relative) of the incumbent. On a *flat* landscape every
/// configuration stays "promising", so the search runs to `max_evals` —
/// reproducing the paper's observation that "the tiny Eqn.(1) computation
/// spends the longest because the performances of its versions are so
/// similar" (§VI-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnpromisingStop {
    /// Relative band around the incumbent that counts as promising.
    pub delta: f64,
    /// Stop when the promising fraction of the pool falls below this.
    pub epsilon: f64,
    /// Never stop before this many evaluations.
    pub min_evals: usize,
}

impl Default for UnpromisingStop {
    fn default() -> Self {
        UnpromisingStop {
            delta: 0.05,
            epsilon: 0.02,
            min_evals: 60,
        }
    }
}

/// Parameters of the search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfParams {
    /// Random configurations evaluated before the first model fit (0 ⇒ one
    /// batch). A diverse initial design keeps the surrogate from locking
    /// onto the first basin it sees.
    pub init_evals: usize,
    /// Concurrent evaluations per iteration (`bs` in Algorithm 2).
    pub batch_size: usize,
    /// Evaluation budget (`nmax`).
    pub max_evals: usize,
    /// Stop early after this many consecutive batches without improving the
    /// incumbent by at least `min_improvement` (relative). `None` disables
    /// early stopping — the paper's flat Eqn.(1) landscape is what makes
    /// its search run long.
    pub patience: Option<usize>,
    /// Relative improvement threshold for the patience counter.
    pub min_improvement: f64,
    /// Optional model-confidence stop (see [`UnpromisingStop`]).
    pub unpromising_stop: Option<UnpromisingStop>,
    pub seed: u64,
    pub forest: ForestParams,
}

impl Default for SurfParams {
    fn default() -> Self {
        SurfParams {
            init_evals: 0,
            batch_size: 10,
            max_evals: 100,
            patience: None,
            min_improvement: 0.01,
            unpromising_stop: None,
            seed: 0x5EED,
            forest: ForestParams::default(),
        }
    }
}

/// Result of a search run.
#[derive(Clone, Debug)]
pub struct SurfResult {
    pub best_id: u128,
    pub best_y: f64,
    /// Every evaluated `(id, y)` pair in evaluation order.
    pub evaluated: Vec<(u128, f64)>,
    /// Batches executed (model refits).
    pub batches: usize,
    /// Threads the evaluation backend used (1 for the serial entry point).
    pub threads: usize,
    /// Wall-clock seconds spent inside the search.
    pub wall_s: f64,
}

impl SurfResult {
    pub fn n_evals(&self) -> usize {
        self.evaluated.len()
    }
}

/// A thread-safe configuration evaluator, the unit of work
/// [`surf_search_parallel`] fans out over the rayon pool. Implementations
/// must be *pure* per id (same id ⇒ same features and value regardless of
/// call order) for parallel runs to stay bit-identical to serial ones; a
/// shared memo cache behind interior mutability satisfies this.
pub trait ParallelEvaluator: Sync {
    /// Binarized feature vector of a configuration.
    fn features(&self, id: u128) -> Vec<f64>;
    /// Measured performance of a configuration (lower = better).
    fn evaluate(&self, id: u128) -> f64;
}

/// Evaluation backend the shared driver is generic over: given a batch of
/// ids decided by the search, produce `(features, y)` per id *in batch
/// order*; given the fitted surrogate, score the remaining pool in index
/// order.
trait Backend {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, f64)>;
    fn score(&mut self, model: &ExtraTrees, remaining: &[u128]) -> Vec<f64>;
    fn threads(&self) -> usize;
}

struct SerialBackend<F, E> {
    features: F,
    evaluate: E,
}

impl<F: FnMut(u128) -> Vec<f64>, E: FnMut(u128) -> f64> Backend for SerialBackend<F, E> {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, f64)> {
        ids.iter()
            .map(|&id| {
                // Evaluation before featurization, matching the historical
                // call order observed by stateful closures.
                let y = (self.evaluate)(id);
                ((self.features)(id), y)
            })
            .collect()
    }

    fn score(&mut self, model: &ExtraTrees, remaining: &[u128]) -> Vec<f64> {
        remaining
            .iter()
            .map(|&id| model.predict(&(self.features)(id)))
            .collect()
    }

    fn threads(&self) -> usize {
        1
    }
}

struct ParallelBackend<'a, E: ParallelEvaluator> {
    evaluator: &'a E,
}

impl<E: ParallelEvaluator> Backend for ParallelBackend<'_, E> {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, f64)> {
        // Order-preserving indexed map: slot i holds id i's result, so the
        // fold in the driver sees batch order regardless of scheduling.
        rayon::par_map_slice(ids, |&id| {
            let y = self.evaluator.evaluate(id);
            (self.evaluator.features(id), y)
        })
    }

    fn score(&mut self, model: &ExtraTrees, remaining: &[u128]) -> Vec<f64> {
        rayon::par_map_slice(remaining, |&id| model.predict(&self.evaluator.features(id)))
    }

    fn threads(&self) -> usize {
        rayon::current_num_threads()
    }
}

/// Runs SURF over `pool`, evaluating serially on the calling thread.
///
/// * `features(id)` returns the *binarized* feature vector of a config.
/// * `evaluate(id)` returns its measured performance (lower = better).
pub fn surf_search(
    pool: &[u128],
    features: impl FnMut(u128) -> Vec<f64>,
    evaluate: impl FnMut(u128) -> f64,
    params: SurfParams,
) -> SurfResult {
    drive(pool, &mut SerialBackend { features, evaluate }, params)
}

/// Runs SURF over `pool`, fanning each batch evaluation and each surrogate
/// scoring pass out over the rayon thread pool (sized by
/// `RAYON_NUM_THREADS`, default: all cores). For pure evaluators the result
/// is bit-identical to [`surf_search`] with the same parameters, at any
/// thread count.
pub fn surf_search_parallel<E: ParallelEvaluator>(
    pool: &[u128],
    evaluator: &E,
    params: SurfParams,
) -> SurfResult {
    drive(pool, &mut ParallelBackend { evaluator }, params)
}

fn drive<B: Backend>(pool: &[u128], backend: &mut B, params: SurfParams) -> SurfResult {
    assert!(!pool.is_empty(), "empty configuration pool");
    assert!(params.batch_size >= 1);
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Remaining (unevaluated) pool, shuffled once for unbiased init.
    let mut remaining: Vec<u128> = pool.to_vec();
    for i in (1..remaining.len()).rev() {
        let j = rng.gen_range(0..=i);
        remaining.swap(i, j);
    }

    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut evaluated: Vec<(u128, f64)> = Vec::new();
    let mut best: Option<(u128, f64)> = None;
    let mut stale_batches = 0usize;
    let mut batches = 0usize;

    // Evaluates one batch (possibly in parallel) and folds the results in
    // batch order, so the incumbent/trace updates are scheduling-independent.
    let run_batch = |ids: &[u128],
                     backend: &mut B,
                     xs: &mut Vec<Vec<f64>>,
                     ys: &mut Vec<f64>,
                     evaluated: &mut Vec<(u128, f64)>,
                     best: &mut Option<(u128, f64)>|
     -> bool {
        let mut improved = false;
        for (&id, (x, y)) in ids.iter().zip(backend.eval_batch(ids)) {
            xs.push(x);
            ys.push(y);
            evaluated.push((id, y));
            let better = match best {
                Some((_, by)) => y < *by * (1.0 - 1e-12),
                None => true,
            };
            if better {
                if let Some((_, by)) = best {
                    if *by - y > params.min_improvement * *by {
                        improved = true;
                    }
                } else {
                    improved = true;
                }
                *best = Some((id, y));
            }
        }
        improved
    };

    // Initialization: random configurations (Algorithm 2, lines 1–4).
    let n_init = params
        .init_evals
        .max(params.batch_size)
        .min(params.max_evals)
        .min(remaining.len());
    let init: Vec<u128> = remaining.drain(..n_init).collect();
    run_batch(&init, backend, &mut xs, &mut ys, &mut evaluated, &mut best);
    batches += 1;

    // Iterative phase (lines 5–12).
    while evaluated.len() < params.max_evals && !remaining.is_empty() {
        let model = ExtraTrees::fit(&xs, &ys, params.forest);
        // Predict all remaining configs, take the best-predicted batch.
        let preds = backend.score(&model, &remaining);
        let mut scored: Vec<(usize, f64)> = preds.into_iter().enumerate().collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

        // Model-confidence stop: how much of the pool still looks
        // competitive with the incumbent?
        if let (Some(stop), Some((_, by))) = (params.unpromising_stop, best) {
            if evaluated.len() >= stop.min_evals {
                let promising = scored
                    .iter()
                    .filter(|(_, pred)| *pred <= by * (1.0 + stop.delta))
                    .count();
                let frac = promising as f64 / scored.len() as f64;
                if frac < stop.epsilon {
                    break;
                }
            }
        }

        let take = params
            .batch_size
            .min(params.max_evals - evaluated.len())
            .min(remaining.len());
        let mut chosen_idx: Vec<usize> = scored[..take].iter().map(|(k, _)| *k).collect();
        chosen_idx.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        let mut ids = Vec::with_capacity(take);
        for k in chosen_idx {
            ids.push(remaining.swap_remove(k));
        }

        let improved = run_batch(&ids, backend, &mut xs, &mut ys, &mut evaluated, &mut best);
        batches += 1;
        if improved {
            stale_batches = 0;
        } else {
            stale_batches += 1;
            if let Some(p) = params.patience {
                if stale_batches >= p {
                    break;
                }
            }
        }
    }

    let (best_id, best_y) = best.expect("at least one configuration evaluated");
    SurfResult {
        best_id,
        best_y,
        evaluated,
        batches,
        threads: backend.threads(),
        wall_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A structured landscape: low values clustered around a "good region"
    /// the model can learn.
    fn landscape(id: u128) -> f64 {
        let x = (id % 100) as f64;
        let y = (id / 100 % 100) as f64;
        ((x - 70.0).powi(2) + (y - 30.0).powi(2)) / 100.0 + 1.0
    }

    fn feats(id: u128) -> Vec<f64> {
        vec![(id % 100) as f64 / 100.0, (id / 100 % 100) as f64 / 100.0]
    }

    #[test]
    fn finds_near_optimum_with_few_evals() {
        let pool: Vec<u128> = (0..10_000).collect();
        let res = surf_search(&pool, feats, landscape, SurfParams::default());
        assert_eq!(res.n_evals(), 100);
        // Global optimum is 1.0 at (70,30); random-100 expectation is far
        // worse. SURF should land close.
        assert!(res.best_y < 3.0, "best = {}", res.best_y);
    }

    #[test]
    fn beats_random_search_on_structured_landscape() {
        let pool: Vec<u128> = (0..10_000).collect();
        let surf = surf_search(&pool, feats, landscape, SurfParams::default());
        let random = crate::baselines::random_search(&pool, landscape, 100, 0x5EED);
        assert!(
            surf.best_y <= random.best_y,
            "surf {} vs random {}",
            surf.best_y,
            random.best_y
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pool: Vec<u128> = (0..5_000).collect();
        let a = surf_search(&pool, feats, landscape, SurfParams::default());
        let b = surf_search(&pool, feats, landscape, SurfParams::default());
        assert_eq!(a.best_id, b.best_id);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn never_reevaluates_a_configuration() {
        let pool: Vec<u128> = (0..500).collect();
        let count = RefCell::new(std::collections::HashMap::<u128, usize>::new());
        let eval = |id: u128| {
            *count.borrow_mut().entry(id).or_insert(0) += 1;
            landscape(id)
        };
        let res = surf_search(&pool, feats, eval, SurfParams::default());
        assert!(count.borrow().values().all(|&c| c == 1));
        assert_eq!(res.n_evals(), 100);
    }

    #[test]
    fn exhausts_small_pools() {
        let pool: Vec<u128> = (0..37).collect();
        let res = surf_search(&pool, feats, landscape, SurfParams::default());
        assert_eq!(res.n_evals(), 37);
        // With the whole pool evaluated the optimum is exact.
        let expect = pool
            .iter()
            .map(|&id| landscape(id))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_y, expect);
    }

    #[test]
    fn patience_stops_flat_landscapes_late_and_peaked_early() {
        let pool: Vec<u128> = (0..50_000).collect();
        let flat = |_: u128| 1.0;
        let params = SurfParams {
            max_evals: 1500,
            patience: Some(10),
            ..Default::default()
        };
        let res_flat = surf_search(&pool, feats, flat, params);
        // Flat: the first evaluation is never improved upon; patience 10
        // means 10 more batches after the first.
        assert!(res_flat.n_evals() <= 110 + params.batch_size);
        let res_peaked = surf_search(&pool, feats, landscape, params);
        assert!(res_peaked.n_evals() <= 1500);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        struct Pure;
        impl ParallelEvaluator for Pure {
            fn features(&self, id: u128) -> Vec<f64> {
                feats(id)
            }
            fn evaluate(&self, id: u128) -> f64 {
                landscape(id)
            }
        }
        let pool: Vec<u128> = (0..5_000).collect();
        let serial = surf_search(&pool, feats, landscape, SurfParams::default());
        let parallel = surf_search_parallel(&pool, &Pure, SurfParams::default());
        assert_eq!(serial.best_id, parallel.best_id);
        assert_eq!(serial.best_y.to_bits(), parallel.best_y.to_bits());
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.batches, parallel.batches);
    }

    #[test]
    fn parallel_never_reevaluates_a_configuration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            calls: Vec<AtomicUsize>,
        }
        impl ParallelEvaluator for Counting {
            fn features(&self, id: u128) -> Vec<f64> {
                feats(id)
            }
            fn evaluate(&self, id: u128) -> f64 {
                self.calls[id as usize].fetch_add(1, Ordering::Relaxed);
                landscape(id)
            }
        }
        let pool: Vec<u128> = (0..500).collect();
        let evaluator = Counting {
            calls: (0..500).map(|_| AtomicUsize::new(0)).collect(),
        };
        let res = surf_search_parallel(&pool, &evaluator, SurfParams::default());
        assert_eq!(res.n_evals(), 100);
        assert!(evaluator
            .calls
            .iter()
            .all(|c| c.load(Ordering::Relaxed) <= 1));
        let total: usize = evaluator
            .calls
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn respects_max_evals_budget() {
        let pool: Vec<u128> = (0..10_000).collect();
        let params = SurfParams {
            max_evals: 23,
            batch_size: 10,
            ..Default::default()
        };
        let res = surf_search(&pool, feats, landscape, params);
        assert_eq!(res.n_evals(), 23);
    }
}
