//! SURF model-based search — Algorithm 2 of the paper.
//!
//! Configurations are opaque `u128` ids drawn from a pool. The caller
//! provides the feature encoding and the (expensive, possibly parallel)
//! evaluation. Lower evaluation values are better (execution time).
//!
//! Three entry points share one driver: [`surf_search`] takes `FnMut`
//! closures and evaluates serially; [`surf_search_serial`] and
//! [`surf_search_parallel`] take a [`ParallelEvaluator`] and run it on the
//! calling thread or fan each batch (and the surrogate's pool scoring) out
//! over the rayon pool. All produce *bit-identical* results for pure
//! evaluators: batch membership is decided before evaluation, results are
//! folded in batch order, and parallel maps preserve index order, so no
//! reduction depends on thread scheduling.
//!
//! ## Fault tolerance
//!
//! An evaluation may fail ([`ParallelEvaluator::try_evaluate`] returns an
//! [`EvalFault`]) or come back non-finite. Either way the configuration is
//! *quarantined* — recorded in [`SurfResult::quarantined`] with its reason
//! and excluded from the surrogate's training set and from the incumbent —
//! and the search continues over survivors. Quarantined configurations
//! still consume evaluation budget (they cost a simulator/benchmark run),
//! and they are never retried: the pool is sampled without replacement.
//! When every attempted configuration is quarantined the search returns
//! [`SearchError::NoSurvivors`] rather than a bogus best.

use crate::binarize::{CompactMatrix, FeatureMatrix};
use crate::forest::{CompiledForest, ExtraTrees, ForestParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// A typed evaluation failure surfaced by [`ParallelEvaluator::try_evaluate`].
///
/// `stage` is a short machine-readable tag naming the pipeline stage that
/// failed (`"mapping"`, `"simulation"`, `"injected"`, …); `detail` is the
/// human-readable reason recorded in the quarantine report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalFault {
    pub stage: &'static str,
    pub detail: String,
}

impl EvalFault {
    pub fn new(stage: &'static str, detail: impl Into<String>) -> Self {
        EvalFault {
            stage,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for EvalFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// Why a search could not produce any result at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// The configuration pool was empty before the search began.
    EmptyPool,
    /// Every attempted configuration was quarantined; there is no finite
    /// best-so-far to return.
    NoSurvivors { attempted: usize },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyPool => write!(f, "empty configuration pool"),
            SearchError::NoSurvivors { attempted } => write!(
                f,
                "all {attempted} attempted configurations were quarantined; no survivor to rank"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Whether the search ran to its stopping rule or was cut short.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SearchStatus {
    /// The search ran until a configured stopping rule (budget, patience,
    /// model confidence, pool exhaustion) was satisfied.
    Complete,
    /// The search stopped early — deadline expired or too many
    /// quarantines — and returned the best survivor found so far.
    Degraded { reason: String },
}

impl SearchStatus {
    pub fn is_degraded(&self) -> bool {
        matches!(self, SearchStatus::Degraded { .. })
    }
}

/// Model-confidence stopping rule: stop once the surrogate predicts that
/// fewer than `epsilon` of the remaining configurations lie within
/// `delta` (relative) of the incumbent. On a *flat* landscape every
/// configuration stays "promising", so the search runs to `max_evals` —
/// reproducing the paper's observation that "the tiny Eqn.(1) computation
/// spends the longest because the performances of its versions are so
/// similar" (§VI-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnpromisingStop {
    /// Relative band around the incumbent that counts as promising.
    pub delta: f64,
    /// Stop when the promising fraction of the pool falls below this.
    pub epsilon: f64,
    /// Never stop before this many evaluations.
    pub min_evals: usize,
}

impl Default for UnpromisingStop {
    fn default() -> Self {
        UnpromisingStop {
            delta: 0.05,
            epsilon: 0.02,
            min_evals: 60,
        }
    }
}

/// Parameters of the search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfParams {
    /// Random configurations evaluated before the first model fit (0 ⇒ one
    /// batch). A diverse initial design keeps the surrogate from locking
    /// onto the first basin it sees.
    pub init_evals: usize,
    /// Concurrent evaluations per iteration (`bs` in Algorithm 2).
    pub batch_size: usize,
    /// Evaluation budget (`nmax`). Quarantined attempts count against it.
    pub max_evals: usize,
    /// Stop early after this many consecutive batches without improving the
    /// incumbent by at least `min_improvement` (relative). `None` disables
    /// early stopping — the paper's flat Eqn.(1) landscape is what makes
    /// its search run long.
    pub patience: Option<usize>,
    /// Relative improvement threshold for the patience counter.
    pub min_improvement: f64,
    /// Optional model-confidence stop (see [`UnpromisingStop`]).
    pub unpromising_stop: Option<UnpromisingStop>,
    /// Wall-clock deadline in seconds, checked at batch boundaries; on
    /// expiry the search stops with a `Degraded` status and the best
    /// survivor so far. `None` disables the deadline (and keeps results
    /// independent of machine speed).
    pub wall_deadline_s: Option<f64>,
    /// Stop (Degraded) when the fraction of attempted configurations that
    /// survived quarantine falls below this after any batch. `0.0`
    /// disables the check.
    pub min_survivor_fraction: f64,
    pub seed: u64,
    pub forest: ForestParams,
}

impl Default for SurfParams {
    fn default() -> Self {
        SurfParams {
            init_evals: 0,
            batch_size: 10,
            max_evals: 100,
            patience: None,
            min_improvement: 0.01,
            unpromising_stop: None,
            wall_deadline_s: None,
            min_survivor_fraction: 0.0,
            seed: 0x5EED,
            forest: ForestParams::default(),
        }
    }
}

/// Result of a search run.
#[derive(Clone, Debug)]
pub struct SurfResult {
    pub best_id: u128,
    pub best_y: f64,
    /// Every surviving `(id, y)` pair in evaluation order.
    pub evaluated: Vec<(u128, f64)>,
    /// Every quarantined `(id, reason)` pair in evaluation order. Ids here
    /// are disjoint from `evaluated` and never retried.
    pub quarantined: Vec<(u128, String)>,
    /// Whether the search completed or degraded (deadline, quarantine
    /// threshold).
    pub status: SearchStatus,
    /// Batches executed (model refits).
    pub batches: usize,
    /// Threads the evaluation backend used (1 for the serial entry point).
    pub threads: usize,
    /// Wall-clock seconds spent inside the search.
    pub wall_s: f64,
    /// Nanoseconds spent inside surrogate pool scoring (model prediction,
    /// excluding the one-time pool featurization).
    pub predict_ns: u64,
    /// Duplicate candidate ids pruned from the caller's pool before the
    /// search began (first occurrence kept). Duplicates would break
    /// sampling-without-replacement and be re-scored by every surrogate
    /// pass, so they never enter the shuffle.
    pub duplicates_pruned: usize,
}

impl SurfResult {
    /// Surviving evaluations (excludes quarantined attempts).
    pub fn n_evals(&self) -> usize {
        self.evaluated.len()
    }

    /// Total attempts: survivors plus quarantined.
    pub fn n_attempted(&self) -> usize {
        self.evaluated.len() + self.quarantined.len()
    }

    /// Serialization-friendly summary of how this search ran, for plan
    /// artifacts that persist the winning configuration's provenance.
    pub fn provenance(&self) -> SearchProvenance {
        SearchProvenance {
            n_evals: self.n_evals(),
            n_quarantined: self.quarantined.len(),
            batches: self.batches,
            threads: self.threads,
            wall_s: self.wall_s,
            degraded: self.status.is_degraded(),
            status: match &self.status {
                SearchStatus::Complete => "complete".to_string(),
                SearchStatus::Degraded { reason } => format!("degraded: {reason}"),
            },
        }
    }
}

/// Flat, string-and-number summary of a finished search — everything a
/// saved tuning plan needs to explain *how* its configuration was found,
/// with no lifetime or closure baggage.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchProvenance {
    pub n_evals: usize,
    pub n_quarantined: usize,
    pub batches: usize,
    pub threads: usize,
    pub wall_s: f64,
    pub degraded: bool,
    /// Human-readable status line (`complete` or `degraded: <reason>`).
    pub status: String,
}

/// A thread-safe configuration evaluator, the unit of work
/// [`surf_search_parallel`] fans out over the rayon pool. Implementations
/// must be *pure* per id (same id ⇒ same features and outcome regardless of
/// call order) for parallel runs to stay bit-identical to serial ones; a
/// shared memo cache behind interior mutability satisfies this.
pub trait ParallelEvaluator: Sync {
    /// Binarized feature vector of a configuration.
    fn features(&self, id: u128) -> Vec<f64>;
    /// Measured performance of a configuration (lower = better).
    fn evaluate(&self, id: u128) -> f64;
    /// Fallible evaluation. The default wraps [`evaluate`], so existing
    /// infallible evaluators keep working; evaluators whose pipeline can
    /// fail per configuration (mapping, simulation, injection) override
    /// this to surface a typed [`EvalFault`] instead of a panic or NaN.
    ///
    /// [`evaluate`]: ParallelEvaluator::evaluate
    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        Ok(self.evaluate(id))
    }
}

/// Blanket impl so wrappers can borrow evaluators.
impl<E: ParallelEvaluator + ?Sized> ParallelEvaluator for &E {
    fn features(&self, id: u128) -> Vec<f64> {
        (**self).features(id)
    }
    fn evaluate(&self, id: u128) -> f64 {
        (**self).evaluate(id)
    }
    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        (**self).try_evaluate(id)
    }
}

/// Evaluation backend the shared driver is generic over: given a batch of
/// ids decided by the search, produce `(features, outcome)` per id *in
/// batch order*; given the fitted surrogate, score the remaining pool in
/// index order. Features of faulted configurations are not needed and may
/// be empty.
trait Backend {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, Result<f64, EvalFault>)>;
    /// Scores `remaining` into the caller-owned `out` (cleared first), so
    /// the driver's per-round prediction buffer is reused across rounds.
    fn score(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>);
    fn threads(&self) -> usize;
    /// Nanoseconds spent in model prediction during `score` so far.
    fn predict_ns(&self) -> u64 {
        0
    }
}

/// Featurized pool shared by every scoring pass: built once from the first
/// pass's `remaining` set (later sets are subsets — the pool only shrinks),
/// compressed into a [`CompactMatrix`] (one bit per one-hot column), then
/// every pass compiles the fresh forest against that schema, gathers row
/// indices and runs the blocked traversal over rows a tenth the size of the
/// flat matrix. This removes both the per-pass per-candidate `Vec<f64>`
/// featurization and the DRAM streaming that used to dominate search wall
/// time; predictions stay bit-identical to the naive per-id path.
struct PoolFeatures {
    rows: CompactMatrix,
    index: HashMap<u128, u32>,
    sel: Vec<u32>,
    /// Compiled-forest scratch refilled in place each pass
    /// ([`ExtraTrees::compile_into`]), so steady-state scoring reuses the
    /// previous round's tree allocations.
    compiled: CompiledForest,
}

impl PoolFeatures {
    fn build(feats: Vec<Vec<f64>>, ids: &[u128]) -> Self {
        let rows = CompactMatrix::from_matrix(&FeatureMatrix::from_rows(&feats));
        let index = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i as u32))
            .collect();
        PoolFeatures {
            rows,
            index,
            sel: Vec::new(),
            compiled: CompiledForest::empty(),
        }
    }

    /// Scores `remaining` in order into `out`; bit-identical to per-id
    /// `model.predict(features(id))` because the compiled traversal makes
    /// the same decisions and reduces in the same tree order per row.
    fn score(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>) {
        self.sel.clear();
        self.sel.extend(remaining.iter().map(|id| self.index[id]));
        model.compile_into(&self.rows, &mut self.compiled);
        self.compiled.predict_rows_into(&self.rows, &self.sel, out);
    }

    /// Parallel variant: rows are predicted independently (no cross-row
    /// reduction), so chunking the selection over the rayon pool — each
    /// chunk filling its own disjoint piece of `out` — keeps every output
    /// bit identical to the serial traversal.
    fn score_parallel(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>) {
        self.sel.clear();
        self.sel.extend(remaining.iter().map(|id| self.index[id]));
        model.compile_into(&self.rows, &mut self.compiled);
        out.clear();
        out.resize(self.sel.len(), 0.0);
        let rows = &self.rows;
        let compiled = &self.compiled;
        rayon::par_chunks_zip_mut(&self.sel, out, 2048, |c, o| {
            compiled.predict_rows_to(rows, c, o);
        });
    }
}

struct SerialBackend<F, E> {
    features: F,
    evaluate: E,
    pool: Option<PoolFeatures>,
    predict_ns: u64,
}

impl<F: FnMut(u128) -> Vec<f64>, E: FnMut(u128) -> f64> Backend for SerialBackend<F, E> {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, Result<f64, EvalFault>)> {
        ids.iter()
            .map(|&id| {
                // Evaluation before featurization, matching the historical
                // call order observed by stateful closures.
                let y = (self.evaluate)(id);
                ((self.features)(id), Ok(y))
            })
            .collect()
    }

    fn score(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>) {
        // The feature closure runs once per pool id — on the first scoring
        // pass — instead of once per id per round: later `remaining` sets
        // are subsets of the first (the pool only shrinks), so the cached
        // compact rows answer every subsequent pass.
        let pool = match &mut self.pool {
            Some(p) => p,
            None => {
                let feats: Vec<Vec<f64>> =
                    remaining.iter().map(|&id| (self.features)(id)).collect();
                self.pool.insert(PoolFeatures::build(feats, remaining))
            }
        };
        let t0 = Instant::now();
        pool.score(model, remaining, out);
        self.predict_ns += t0.elapsed().as_nanos() as u64;
    }

    fn threads(&self) -> usize {
        1
    }

    fn predict_ns(&self) -> u64 {
        self.predict_ns
    }
}

/// Serial backend over a [`ParallelEvaluator`]: same call order as the
/// parallel backend, on the calling thread. Used for `threads == 1` so
/// fault outcomes (not just values) match the parallel path bit-for-bit.
struct SerialEvalBackend<'a, E: ParallelEvaluator> {
    evaluator: &'a E,
    pool: Option<PoolFeatures>,
    predict_ns: u64,
}

impl<E: ParallelEvaluator> Backend for SerialEvalBackend<'_, E> {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, Result<f64, EvalFault>)> {
        ids.iter()
            .map(|&id| match self.evaluator.try_evaluate(id) {
                Ok(y) => (self.evaluator.features(id), Ok(y)),
                Err(fault) => (Vec::new(), Err(fault)),
            })
            .collect()
    }

    fn score(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>) {
        let pool = match &mut self.pool {
            Some(p) => p,
            None => {
                let feats: Vec<Vec<f64>> = remaining
                    .iter()
                    .map(|&id| self.evaluator.features(id))
                    .collect();
                self.pool.insert(PoolFeatures::build(feats, remaining))
            }
        };
        let t0 = Instant::now();
        pool.score(model, remaining, out);
        self.predict_ns += t0.elapsed().as_nanos() as u64;
    }

    fn threads(&self) -> usize {
        1
    }

    fn predict_ns(&self) -> u64 {
        self.predict_ns
    }
}

struct ParallelBackend<'a, E: ParallelEvaluator> {
    evaluator: &'a E,
    pool: Option<PoolFeatures>,
    predict_ns: u64,
}

impl<E: ParallelEvaluator> Backend for ParallelBackend<'_, E> {
    fn eval_batch(&mut self, ids: &[u128]) -> Vec<(Vec<f64>, Result<f64, EvalFault>)> {
        // Order-preserving indexed map: slot i holds id i's result, so the
        // fold in the driver sees batch order regardless of scheduling.
        rayon::par_map_slice(ids, |&id| match self.evaluator.try_evaluate(id) {
            Ok(y) => (self.evaluator.features(id), Ok(y)),
            Err(fault) => (Vec::new(), Err(fault)),
        })
    }

    fn score(&mut self, model: &ExtraTrees, remaining: &[u128], out: &mut Vec<f64>) {
        let pool = match &mut self.pool {
            Some(p) => p,
            None => {
                let feats = rayon::par_map_slice(remaining, |&id| self.evaluator.features(id));
                self.pool.insert(PoolFeatures::build(feats, remaining))
            }
        };
        let t0 = Instant::now();
        pool.score_parallel(model, remaining, out);
        self.predict_ns += t0.elapsed().as_nanos() as u64;
    }

    fn threads(&self) -> usize {
        rayon::current_num_threads()
    }

    fn predict_ns(&self) -> u64 {
        self.predict_ns
    }
}

/// Runs SURF over `pool`, evaluating serially on the calling thread.
///
/// * `features(id)` returns the *binarized* feature vector of a config.
/// * `evaluate(id)` returns its measured performance (lower = better).
///
/// Non-finite evaluations are quarantined rather than panicking; see the
/// module docs.
pub fn surf_search(
    pool: &[u128],
    features: impl FnMut(u128) -> Vec<f64>,
    evaluate: impl FnMut(u128) -> f64,
    params: SurfParams,
) -> Result<SurfResult, SearchError> {
    drive(
        pool,
        &mut SerialBackend {
            features,
            evaluate,
            pool: None,
            predict_ns: 0,
        },
        params,
    )
}

/// Runs SURF over `pool` with a [`ParallelEvaluator`] on the calling
/// thread — identical fault semantics to [`surf_search_parallel`], without
/// touching the rayon pool. Bit-identical to the parallel entry point for
/// pure evaluators.
pub fn surf_search_serial<E: ParallelEvaluator>(
    pool: &[u128],
    evaluator: &E,
    params: SurfParams,
) -> Result<SurfResult, SearchError> {
    drive(
        pool,
        &mut SerialEvalBackend {
            evaluator,
            pool: None,
            predict_ns: 0,
        },
        params,
    )
}

/// Runs SURF over `pool`, fanning each batch evaluation and each surrogate
/// scoring pass out over the rayon thread pool (sized by
/// `RAYON_NUM_THREADS`, default: all cores). For pure evaluators the result
/// is bit-identical to [`surf_search`] with the same parameters, at any
/// thread count.
pub fn surf_search_parallel<E: ParallelEvaluator>(
    pool: &[u128],
    evaluator: &E,
    params: SurfParams,
) -> Result<SurfResult, SearchError> {
    drive(
        pool,
        &mut ParallelBackend {
            evaluator,
            pool: None,
            predict_ns: 0,
        },
        params,
    )
}

fn drive<B: Backend>(
    pool: &[u128],
    backend: &mut B,
    params: SurfParams,
) -> Result<SurfResult, SearchError> {
    if pool.is_empty() {
        return Err(SearchError::EmptyPool);
    }
    let batch_size = params.batch_size.max(1);
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Remaining (unevaluated) pool. Duplicate ids in the caller's pool
    // would break sampling-without-replacement (the same configuration
    // evaluated twice) and be re-scored by every surrogate pass, so they
    // are pruned before the shuffle — first occurrence wins, order
    // otherwise preserved, which keeps already-unique pools bit-identical
    // to the history (the pre-shuffle sequence is unchanged).
    let mut remaining: Vec<u128> = pool.to_vec();
    {
        let mut seen = std::collections::HashSet::with_capacity(remaining.len());
        remaining.retain(|&id| seen.insert(id));
    }
    let duplicates_pruned = pool.len() - remaining.len();

    // Shuffled once for an unbiased init.
    for i in (1..remaining.len()).rev() {
        let j = rng.gen_range(0..=i);
        remaining.swap(i, j);
    }

    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut evaluated: Vec<(u128, f64)> = Vec::new();
    let mut quarantined: Vec<(u128, String)> = Vec::new();
    let mut best: Option<(u128, f64)> = None;
    let mut status = SearchStatus::Complete;
    let mut stale_batches = 0usize;
    let mut batches = 0usize;

    // Evaluates one batch (possibly in parallel) and folds the results in
    // batch order, so the incumbent/trace/quarantine updates are
    // scheduling-independent. Faulted or non-finite outcomes go to
    // quarantine and never reach the surrogate's training set.
    let run_batch = |ids: &[u128],
                     backend: &mut B,
                     xs: &mut Vec<Vec<f64>>,
                     ys: &mut Vec<f64>,
                     evaluated: &mut Vec<(u128, f64)>,
                     quarantined: &mut Vec<(u128, String)>,
                     best: &mut Option<(u128, f64)>|
     -> bool {
        let mut improved = false;
        for (&id, (x, outcome)) in ids.iter().zip(backend.eval_batch(ids)) {
            let y = match outcome {
                Ok(y) if y.is_finite() => y,
                Ok(y) => {
                    quarantined.push((id, format!("non-finite simulated time {y}")));
                    continue;
                }
                Err(fault) => {
                    quarantined.push((id, fault.to_string()));
                    continue;
                }
            };
            xs.push(x);
            ys.push(y);
            evaluated.push((id, y));
            let better = match best {
                Some((_, by)) => y < *by * (1.0 - 1e-12),
                None => true,
            };
            if better {
                if let Some((_, by)) = best {
                    if *by - y > params.min_improvement * *by {
                        improved = true;
                    }
                } else {
                    improved = true;
                }
                *best = Some((id, y));
            }
        }
        improved
    };

    // Degradation checks shared by every batch boundary. Returns the reason
    // when the search should stop early.
    let degraded = |start: &Instant, n_ok: usize, n_bad: usize| -> Option<String> {
        if let Some(deadline) = params.wall_deadline_s {
            if start.elapsed().as_secs_f64() >= deadline {
                return Some(format!(
                    "wall deadline {deadline}s expired after {} attempts",
                    n_ok + n_bad
                ));
            }
        }
        let attempted = n_ok + n_bad;
        if params.min_survivor_fraction > 0.0 && attempted > 0 {
            let frac = n_ok as f64 / attempted as f64;
            if frac < params.min_survivor_fraction {
                return Some(format!(
                    "survivor fraction {frac:.3} below threshold {} ({n_bad}/{attempted} quarantined)",
                    params.min_survivor_fraction
                ));
            }
        }
        None
    };

    // Initialization: random configurations (Algorithm 2, lines 1–4).
    let n_init = params
        .init_evals
        .max(batch_size)
        .min(params.max_evals)
        .min(remaining.len());
    let init: Vec<u128> = remaining.drain(..n_init).collect();
    run_batch(
        &init,
        backend,
        &mut xs,
        &mut ys,
        &mut evaluated,
        &mut quarantined,
        &mut best,
    );
    batches += 1;

    // Per-round scratch, reused across the whole iterative phase so
    // steady-state prediction and batch selection allocate nothing.
    let mut preds: Vec<f64> = Vec::new();
    let mut scored: Vec<(usize, f64)> = Vec::new();
    let mut chosen_idx: Vec<usize> = Vec::new();
    let mut ids: Vec<u128> = Vec::new();

    // Iterative phase (lines 5–12).
    while evaluated.len() + quarantined.len() < params.max_evals && !remaining.is_empty() {
        if let Some(reason) = degraded(&start, evaluated.len(), quarantined.len()) {
            status = SearchStatus::Degraded { reason };
            break;
        }
        let attempted = evaluated.len() + quarantined.len();
        let take = batch_size
            .min(params.max_evals - attempted)
            .min(remaining.len());

        ids.clear();
        if ys.is_empty() {
            // Nothing survived yet: the surrogate has no training data, so
            // keep drawing from the shuffled pool (pure random phase).
            ids.extend(remaining.drain(..take));
        } else {
            let model = ExtraTrees::fit(&xs, &ys, params.forest);
            // Predict all remaining configs, take the best-predicted batch.
            backend.score(&model, &remaining, &mut preds);
            scored.clear();
            scored.extend(preds.iter().copied().enumerate());
            scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

            // Model-confidence stop: how much of the pool still looks
            // competitive with the incumbent?
            if let (Some(stop), Some((_, by))) = (params.unpromising_stop, best) {
                if evaluated.len() >= stop.min_evals {
                    let promising = scored
                        .iter()
                        .filter(|(_, pred)| *pred <= by * (1.0 + stop.delta))
                        .count();
                    let frac = promising as f64 / scored.len() as f64;
                    if frac < stop.epsilon {
                        break;
                    }
                }
            }

            chosen_idx.clear();
            chosen_idx.extend(scored[..take].iter().map(|(k, _)| *k));
            chosen_idx.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
            for &k in &chosen_idx {
                ids.push(remaining.swap_remove(k));
            }
        }

        let improved = run_batch(
            &ids,
            backend,
            &mut xs,
            &mut ys,
            &mut evaluated,
            &mut quarantined,
            &mut best,
        );
        batches += 1;
        if improved {
            stale_batches = 0;
        } else {
            stale_batches += 1;
            if let Some(p) = params.patience {
                if stale_batches >= p {
                    break;
                }
            }
        }
    }

    // One final degradation check so a run that exhausted its budget while
    // below the survivor threshold is still reported as degraded.
    if status == SearchStatus::Complete {
        if let Some(reason) = degraded(&start, evaluated.len(), quarantined.len()) {
            status = SearchStatus::Degraded { reason };
        }
    }

    match best {
        Some((best_id, best_y)) => Ok(SurfResult {
            best_id,
            best_y,
            evaluated,
            quarantined,
            status,
            batches,
            threads: backend.threads(),
            wall_s: start.elapsed().as_secs_f64(),
            predict_ns: backend.predict_ns(),
            duplicates_pruned,
        }),
        None => Err(SearchError::NoSurvivors {
            attempted: quarantined.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A structured landscape: low values clustered around a "good region"
    /// the model can learn.
    fn landscape(id: u128) -> f64 {
        let x = (id % 100) as f64;
        let y = (id / 100 % 100) as f64;
        ((x - 70.0).powi(2) + (y - 30.0).powi(2)) / 100.0 + 1.0
    }

    fn feats(id: u128) -> Vec<f64> {
        vec![(id % 100) as f64 / 100.0, (id / 100 % 100) as f64 / 100.0]
    }

    #[test]
    fn finds_near_optimum_with_few_evals() {
        let pool: Vec<u128> = (0..10_000).collect();
        let res = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        assert_eq!(res.n_evals(), 100);
        // Global optimum is 1.0 at (70,30); random-100 expectation is far
        // worse. SURF should land close.
        assert!(res.best_y < 3.0, "best = {}", res.best_y);
        assert_eq!(res.status, SearchStatus::Complete);
        assert!(res.quarantined.is_empty());
    }

    #[test]
    fn beats_random_search_on_structured_landscape() {
        let pool: Vec<u128> = (0..10_000).collect();
        let surf = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        let random = crate::baselines::random_search(&pool, landscape, 100, 0x5EED);
        assert!(
            surf.best_y <= random.best_y,
            "surf {} vs random {}",
            surf.best_y,
            random.best_y
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pool: Vec<u128> = (0..5_000).collect();
        let a = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        let b = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        assert_eq!(a.best_id, b.best_id);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn never_reevaluates_a_configuration() {
        let pool: Vec<u128> = (0..500).collect();
        let count = RefCell::new(std::collections::HashMap::<u128, usize>::new());
        let eval = |id: u128| {
            *count.borrow_mut().entry(id).or_insert(0) += 1;
            landscape(id)
        };
        let res = surf_search(&pool, feats, eval, SurfParams::default()).unwrap();
        assert!(count.borrow().values().all(|&c| c == 1));
        assert_eq!(res.n_evals(), 100);
    }

    #[test]
    fn exhausts_small_pools() {
        let pool: Vec<u128> = (0..37).collect();
        let res = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        assert_eq!(res.n_evals(), 37);
        // With the whole pool evaluated the optimum is exact.
        let expect = pool
            .iter()
            .map(|&id| landscape(id))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_y, expect);
    }

    #[test]
    fn patience_stops_flat_landscapes_late_and_peaked_early() {
        let pool: Vec<u128> = (0..50_000).collect();
        let flat = |_: u128| 1.0;
        let params = SurfParams {
            max_evals: 1500,
            patience: Some(10),
            ..Default::default()
        };
        let res_flat = surf_search(&pool, feats, flat, params).unwrap();
        // Flat: the first evaluation is never improved upon; patience 10
        // means 10 more batches after the first.
        assert!(res_flat.n_evals() <= 110 + params.batch_size);
        let res_peaked = surf_search(&pool, feats, landscape, params).unwrap();
        assert!(res_peaked.n_evals() <= 1500);
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        struct Pure;
        impl ParallelEvaluator for Pure {
            fn features(&self, id: u128) -> Vec<f64> {
                feats(id)
            }
            fn evaluate(&self, id: u128) -> f64 {
                landscape(id)
            }
        }
        let pool: Vec<u128> = (0..5_000).collect();
        let serial = surf_search(&pool, feats, landscape, SurfParams::default()).unwrap();
        let parallel = surf_search_parallel(&pool, &Pure, SurfParams::default()).unwrap();
        assert_eq!(serial.best_id, parallel.best_id);
        assert_eq!(serial.best_y.to_bits(), parallel.best_y.to_bits());
        assert_eq!(serial.evaluated, parallel.evaluated);
        assert_eq!(serial.batches, parallel.batches);
        let eval_serial = surf_search_serial(&pool, &Pure, SurfParams::default()).unwrap();
        assert_eq!(eval_serial.evaluated, parallel.evaluated);
        assert_eq!(eval_serial.best_id, parallel.best_id);
    }

    #[test]
    fn parallel_never_reevaluates_a_configuration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            calls: Vec<AtomicUsize>,
        }
        impl ParallelEvaluator for Counting {
            fn features(&self, id: u128) -> Vec<f64> {
                feats(id)
            }
            fn evaluate(&self, id: u128) -> f64 {
                self.calls[id as usize].fetch_add(1, Ordering::Relaxed);
                landscape(id)
            }
        }
        let pool: Vec<u128> = (0..500).collect();
        let evaluator = Counting {
            calls: (0..500).map(|_| AtomicUsize::new(0)).collect(),
        };
        let res = surf_search_parallel(&pool, &evaluator, SurfParams::default()).unwrap();
        assert_eq!(res.n_evals(), 100);
        assert!(evaluator
            .calls
            .iter()
            .all(|c| c.load(Ordering::Relaxed) <= 1));
        let total: usize = evaluator
            .calls
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn respects_max_evals_budget() {
        let pool: Vec<u128> = (0..10_000).collect();
        let params = SurfParams {
            max_evals: 23,
            batch_size: 10,
            ..Default::default()
        };
        let res = surf_search(&pool, feats, landscape, params).unwrap();
        assert_eq!(res.n_evals(), 23);
    }

    #[test]
    fn empty_pool_is_an_error_not_a_panic() {
        let res = surf_search(&[], feats, landscape, SurfParams::default());
        assert_eq!(res.unwrap_err(), SearchError::EmptyPool);
    }

    #[test]
    fn nan_evaluations_are_quarantined_not_fatal() {
        let pool: Vec<u128> = (0..400).collect();
        // Every 5th configuration yields NaN; the optimum (321 → 0.0 shifted
        // to 1.0) survives.
        let eval = |id: u128| {
            if id.is_multiple_of(5) {
                f64::NAN
            } else {
                landscape(id)
            }
        };
        let res = surf_search(&pool, feats, eval, SurfParams::default()).unwrap();
        assert!(res.best_y.is_finite());
        assert!(!res.quarantined.is_empty());
        assert!(res
            .quarantined
            .iter()
            .all(|(id, reason)| id % 5 == 0 && reason.contains("non-finite")));
        // Quarantined attempts count against the budget.
        assert_eq!(res.n_attempted(), 100);
        // No id appears in both lists.
        let ok: std::collections::HashSet<u128> = res.evaluated.iter().map(|&(id, _)| id).collect();
        assert!(res.quarantined.iter().all(|(id, _)| !ok.contains(id)));
    }

    #[test]
    fn all_faulty_pool_reports_no_survivors() {
        let pool: Vec<u128> = (0..50).collect();
        let res = surf_search(&pool, feats, |_| f64::INFINITY, SurfParams::default());
        assert_eq!(res.unwrap_err(), SearchError::NoSurvivors { attempted: 50 });
    }

    #[test]
    fn typed_faults_flow_through_try_evaluate() {
        struct Flaky;
        impl ParallelEvaluator for Flaky {
            fn features(&self, id: u128) -> Vec<f64> {
                feats(id)
            }
            fn evaluate(&self, id: u128) -> f64 {
                landscape(id)
            }
            fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
                if id.is_multiple_of(7) {
                    Err(EvalFault::new("injected", format!("boom on {id}")))
                } else {
                    Ok(landscape(id))
                }
            }
        }
        let pool: Vec<u128> = (0..600).collect();
        let par = surf_search_parallel(&pool, &Flaky, SurfParams::default()).unwrap();
        let ser = surf_search_serial(&pool, &Flaky, SurfParams::default()).unwrap();
        assert!(par.quarantined.iter().all(|(id, r)| {
            id % 7 == 0 && r.contains("injected") && r.contains(&format!("boom on {id}"))
        }));
        assert!(!par.quarantined.is_empty());
        assert_eq!(par.evaluated, ser.evaluated);
        assert_eq!(par.quarantined, ser.quarantined);
        assert_eq!(par.best_id, ser.best_id);
    }

    #[test]
    fn survivor_fraction_threshold_degrades() {
        let pool: Vec<u128> = (0..2_000).collect();
        // Two thirds of the pool is broken: survivor fraction ~1/3 < 0.5.
        let eval = |id: u128| {
            if !id.is_multiple_of(3) {
                f64::NAN
            } else {
                landscape(id)
            }
        };
        let params = SurfParams {
            min_survivor_fraction: 0.5,
            ..Default::default()
        };
        let res = surf_search(&pool, feats, eval, params).unwrap();
        assert!(res.status.is_degraded(), "status = {:?}", res.status);
        assert!(res.best_y.is_finite());
        // Degraded early: far fewer attempts than the full budget would
        // imply only when the threshold fired before exhaustion; at minimum
        // the status carries the reason.
        match &res.status {
            SearchStatus::Degraded { reason } => assert!(reason.contains("survivor fraction")),
            SearchStatus::Complete => unreachable!(),
        }
    }

    #[test]
    fn duplicate_pool_entries_are_pruned_and_counted() {
        // A pool listing every id twice (plus one triple) must behave
        // exactly like the unique pool: each configuration evaluated at
        // most once, and the prune count reported.
        let unique: Vec<u128> = (0..500).collect();
        let mut doubled: Vec<u128> = Vec::new();
        for &id in &unique {
            doubled.push(id);
            doubled.push(id);
        }
        doubled.push(3);
        let count = RefCell::new(std::collections::HashMap::<u128, usize>::new());
        let eval = |id: u128| {
            *count.borrow_mut().entry(id).or_insert(0) += 1;
            landscape(id)
        };
        let res = surf_search(&doubled, feats, eval, SurfParams::default()).unwrap();
        assert_eq!(res.duplicates_pruned, unique.len() + 1);
        assert!(count.borrow().values().all(|&c| c == 1));
        let ids: std::collections::HashSet<u128> =
            res.evaluated.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids.len(), res.n_evals());
    }

    #[test]
    fn deduplicated_pool_runs_bitwise_identical_to_unique_pool() {
        let unique: Vec<u128> = (0..500).collect();
        let mut doubled = unique.clone();
        doubled.extend(&unique);
        let base = surf_search(&unique, feats, landscape, SurfParams::default()).unwrap();
        let dup = surf_search(&doubled, feats, landscape, SurfParams::default()).unwrap();
        assert_eq!(base.best_id, dup.best_id);
        assert_eq!(base.best_y.to_bits(), dup.best_y.to_bits());
        assert_eq!(base.evaluated, dup.evaluated);
        assert_eq!(base.batches, dup.batches);
        assert_eq!(base.duplicates_pruned, 0);
        assert_eq!(dup.duplicates_pruned, unique.len());
    }

    #[test]
    fn zero_deadline_degrades_with_best_so_far() {
        let pool: Vec<u128> = (0..5_000).collect();
        let params = SurfParams {
            wall_deadline_s: Some(0.0),
            ..Default::default()
        };
        let res = surf_search(&pool, feats, landscape, params).unwrap();
        assert!(res.status.is_degraded());
        assert!(res.best_y.is_finite());
        // Only the init batch ran before the deadline check fired.
        assert_eq!(res.batches, 1);
    }
}
