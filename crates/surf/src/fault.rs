//! Deterministic fault injection for search robustness tests.
//!
//! [`FaultyEvaluator`] wraps any [`ParallelEvaluator`] and injects failures,
//! NaN times, and slow evaluations keyed purely by configuration id — the
//! same SplitMix64 scheme the pipeline's noise model uses — so an injected
//! fault plan is reproducible across runs, thread counts, and batch
//! schedules. The wrapper is pure per id: the same id always meets the same
//! fate, which keeps parallel searches bit-identical to serial ones even
//! under injection.

use crate::search::{EvalFault, ParallelEvaluator};

/// What the plan decided to do to one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// `try_evaluate` returns an `EvalFault` (a hard failure).
    Failure,
    /// `try_evaluate` returns `Ok(NaN)` (a silent corruption the search
    /// must catch with its non-finite guard).
    NanTime,
    /// The evaluation sleeps before answering (exercises deadlines).
    Slow,
}

/// A deterministic fault plan: rates for each fault class plus a seed.
/// Decisions are a pure function of `(seed, id)`, so the same plan always
/// corrupts the same configurations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Fraction of configurations that hard-fail.
    pub failure_rate: f64,
    /// Fraction that silently return NaN.
    pub nan_rate: f64,
    /// Fraction that stall for `slow_ms` before answering.
    pub slow_rate: f64,
    /// Stall duration for slow configurations, in milliseconds.
    pub slow_ms: u64,
    /// Seed mixed into every per-id decision.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — `FaultyEvaluator` becomes a pure
    /// pass-through.
    pub fn none() -> Self {
        FaultPlan {
            failure_rate: 0.0,
            nan_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed: 0,
        }
    }

    /// Splits `rate` evenly between hard failures and NaN times.
    pub fn mixed(rate: f64, seed: u64) -> Self {
        FaultPlan {
            failure_rate: rate / 2.0,
            nan_rate: rate / 2.0,
            slow_rate: 0.0,
            slow_ms: 0,
            seed,
        }
    }

    pub fn is_none(&self) -> bool {
        self.failure_rate <= 0.0 && self.nan_rate <= 0.0 && self.slow_rate <= 0.0
    }

    /// The fate of configuration `id` under this plan: a pure, stateless
    /// decision, usable by tests to predict exactly which configurations a
    /// search must quarantine.
    pub fn decide(&self, id: u128) -> Option<InjectedFault> {
        if self.is_none() {
            return None;
        }
        let u = unit(self.seed, id);
        if u < self.failure_rate {
            Some(InjectedFault::Failure)
        } else if u < self.failure_rate + self.nan_rate {
            Some(InjectedFault::NanTime)
        } else if u < self.failure_rate + self.nan_rate + self.slow_rate {
            Some(InjectedFault::Slow)
        } else {
            None
        }
    }
}

/// Deterministic uniform draw in `[0, 1)` from `(seed, id)` — SplitMix64
/// finalization over the mixed key, mirroring the pipeline noise model.
/// Public so other fault planes (store I/O faults, serve-level chaos)
/// make their per-event decisions with the exact same scheme.
pub fn unit(seed: u64, id: u128) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(id as u64)
        .wrapping_add((id >> 64) as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 high bits → [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Wraps an evaluator and applies a [`FaultPlan`] to every `try_evaluate`
/// call. Features pass through untouched (featurization is cheap and
/// deterministic; the faults model the expensive measurement step).
pub struct FaultyEvaluator<E> {
    inner: E,
    plan: FaultPlan,
}

impl<E: ParallelEvaluator> FaultyEvaluator<E> {
    pub fn new(inner: E, plan: FaultPlan) -> Self {
        FaultyEvaluator { inner, plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: ParallelEvaluator> ParallelEvaluator for FaultyEvaluator<E> {
    fn features(&self, id: u128) -> Vec<f64> {
        self.inner.features(id)
    }

    fn evaluate(&self, id: u128) -> f64 {
        self.try_evaluate(id).unwrap_or(f64::NAN)
    }

    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        match self.plan.decide(id) {
            Some(InjectedFault::Failure) => Err(EvalFault::new(
                "injected",
                format!("injected evaluation failure for config {id}"),
            )),
            Some(InjectedFault::NanTime) => Ok(f64::NAN),
            Some(InjectedFault::Slow) => {
                std::thread::sleep(std::time::Duration::from_millis(self.plan.slow_ms));
                self.inner.try_evaluate(id)
            }
            None => self.inner.try_evaluate(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{surf_search_parallel, surf_search_serial, SurfParams};

    struct Quadratic;
    impl ParallelEvaluator for Quadratic {
        fn features(&self, id: u128) -> Vec<f64> {
            vec![(id % 100) as f64 / 100.0, (id / 100 % 100) as f64 / 100.0]
        }
        fn evaluate(&self, id: u128) -> f64 {
            let x = (id % 100) as f64;
            let y = (id / 100 % 100) as f64;
            ((x - 70.0).powi(2) + (y - 30.0).powi(2)) / 100.0 + 1.0
        }
    }

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = FaultPlan::mixed(0.2, 42);
        let n = 10_000u128;
        let faults = (0..n).filter(|&id| plan.decide(id).is_some()).count();
        let frac = faults as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "observed fault rate {frac}");
        for id in 0..100 {
            assert_eq!(plan.decide(id), plan.decide(id));
        }
    }

    #[test]
    fn none_plan_is_transparent() {
        let wrapped = FaultyEvaluator::new(Quadratic, FaultPlan::none());
        for id in [0u128, 7, 7000, 12_345] {
            assert_eq!(
                wrapped.try_evaluate(id).unwrap().to_bits(),
                Quadratic.evaluate(id).to_bits()
            );
        }
    }

    #[test]
    fn injection_preserves_serial_parallel_bit_identity() {
        let pool: Vec<u128> = (0..4_000).collect();
        let wrapped = FaultyEvaluator::new(Quadratic, FaultPlan::mixed(0.3, 0xFA17));
        let par = surf_search_parallel(&pool, &wrapped, SurfParams::default()).unwrap();
        let ser = surf_search_serial(&pool, &wrapped, SurfParams::default()).unwrap();
        assert_eq!(par.evaluated, ser.evaluated);
        assert_eq!(par.quarantined, ser.quarantined);
        assert_eq!(par.best_id, ser.best_id);
        assert_eq!(par.best_y.to_bits(), ser.best_y.to_bits());
        assert!(!par.quarantined.is_empty());
    }

    #[test]
    fn quarantine_matches_plan_exactly() {
        let pool: Vec<u128> = (0..2_000).collect();
        let plan = FaultPlan::mixed(0.25, 7);
        let wrapped = FaultyEvaluator::new(Quadratic, plan);
        let res = surf_search_parallel(&pool, &wrapped, SurfParams::default()).unwrap();
        for (id, _) in &res.quarantined {
            assert!(
                plan.decide(*id).is_some(),
                "config {id} wrongly quarantined"
            );
        }
        for (id, _) in &res.evaluated {
            assert!(
                plan.decide(*id).is_none(),
                "config {id} should have faulted"
            );
        }
    }
}
