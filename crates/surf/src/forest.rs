//! Extremely randomized trees regressor (Geurts, Ernst & Wehenkel 2006),
//! the surrogate model the paper adopts "due to their ability to handle the
//! binarized parameters using recursive partitioning and to model nonlinear
//! interactions among the parameters" (§V).
//!
//! Implemented from scratch: each tree is grown on the full training set;
//! at every node, `k_features` attributes are drawn at random, each gets a
//! uniformly random cut-point between its node-local min and max, and the
//! split with the best variance reduction wins.

use crate::binarize::{CompactMatrix, FeatureMatrix, NUMERIC_COL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the forest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestParams {
    pub n_trees: usize,
    /// Nodes with fewer samples become leaves.
    pub min_samples_leaf: usize,
    /// Random attributes examined per split; `None` = all attributes.
    pub k_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 30,
            min_samples_leaf: 2,
            k_features: None,
            seed: 0xBA22ACDA,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// One packed node: 24 bytes, so a traversal step touches a single cache
/// line instead of one per parallel array. Leaves self-loop
/// (`left == right == self`) with a `-inf` threshold, so a bounded walk
/// parks at the leaf without branching on the node kind.
#[derive(Clone, Copy, Debug)]
struct PackedNode {
    thr: f64,
    feat: u32,
    left: u32,
    right: u32,
}

/// Flat tree layout for the batch prediction hot path.
#[derive(Clone, Debug)]
struct PackedTree {
    nodes: Vec<PackedNode>,
    val: Vec<f64>,
    depth: u32,
}

impl PackedTree {
    fn pack(tree: &Tree) -> Self {
        let n = tree.nodes.len();
        let mut p = PackedTree {
            nodes: vec![
                PackedNode {
                    thr: f64::NEG_INFINITY,
                    feat: 0,
                    left: 0,
                    right: 0,
                };
                n
            ],
            val: vec![0.0; n],
            depth: 0,
        };
        for (i, node) in tree.nodes.iter().enumerate() {
            match node {
                Node::Leaf { value } => {
                    p.nodes[i].left = i as u32;
                    p.nodes[i].right = i as u32;
                    p.val[i] = *value;
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    p.nodes[i] = PackedNode {
                        thr: *threshold,
                        feat: *feature as u32,
                        left: *left as u32,
                        right: *right as u32,
                    };
                }
            }
        }
        // Depth of the deepest leaf: the maximal walk length.
        let mut stack = vec![(0u32, 0u32)];
        while let Some((at, d)) = stack.pop() {
            p.depth = p.depth.max(d);
            if let Node::Split { left, right, .. } = &tree.nodes[at as usize] {
                stack.push((*left as u32, d + 1));
                stack.push((*right as u32, d + 1));
            }
        }
        p
    }

    #[inline(always)]
    fn step(&self, x: &[f64], at: u32) -> u32 {
        let n = &self.nodes[at as usize];
        if x[n.feat as usize] < n.thr {
            n.left
        } else {
            n.right
        }
    }

    /// Walks one row to its leaf value.
    #[inline]
    fn leaf(&self, x: &[f64]) -> f64 {
        let mut at = 0u32;
        for _ in 0..self.depth {
            let next = self.step(x, at);
            if next == at {
                break;
            }
            at = next;
        }
        self.val[at as usize]
    }
}

/// A forest whose node feature indices are rewritten against a
/// [`CompactMatrix`] schema: each node records whether its column lives in
/// the bitset or the numeric block, so traversal never consults a
/// translation table. The comparison is unchanged — a bit rereads as
/// exactly 0.0 or 1.0 before the `x < threshold` test — so every decision,
/// and therefore every prediction, is bit-identical to the flat-matrix
/// walk.
#[derive(Clone, Debug)]
pub struct CompiledForest {
    trees: Vec<PackedTree>,
    n_trees: usize,
    n_features: usize,
}

impl PackedTree {
    #[inline(always)]
    fn cstep(&self, xb: &[u64], xn: &[f64], at: u32) -> u32 {
        let n = &self.nodes[at as usize];
        let f = n.feat;
        let x = if f & NUMERIC_COL != 0 {
            xn[(f & !NUMERIC_COL) as usize]
        } else {
            ((xb[(f >> 6) as usize] >> (f & 63)) & 1) as f64
        };
        if x < n.thr {
            n.left
        } else {
            n.right
        }
    }

    #[inline]
    fn cleaf(&self, xb: &[u64], xn: &[f64]) -> f64 {
        let mut at = 0u32;
        for _ in 0..self.depth {
            let next = self.cstep(xb, xn, at);
            if next == at {
                break;
            }
            at = next;
        }
        self.val[at as usize]
    }
}

impl CompiledForest {
    /// An empty forest to be filled by [`ExtraTrees::compile_into`]; keeps
    /// its allocations across refills.
    pub fn empty() -> CompiledForest {
        CompiledForest {
            trees: Vec::new(),
            n_trees: 0,
            n_features: 0,
        }
    }

    /// Predicts the selected `rows` of compact matrix `c` into `out`
    /// (cleared first); bit-identical to
    /// [`ExtraTrees::predict_rows_into`] on the flat matrix `c` was built
    /// from.
    pub fn predict_rows_into(&self, c: &CompactMatrix, rows: &[u32], out: &mut Vec<f64>) {
        out.clear();
        out.resize(rows.len(), 0.0);
        self.predict_rows_to(c, rows, out);
    }

    /// Slice form of [`CompiledForest::predict_rows_into`]: fills the
    /// exactly-sized `out` without touching any allocation, so hot loops
    /// (and parallel chunked scoring) can reuse caller-owned buffers.
    pub fn predict_rows_to(&self, c: &CompactMatrix, rows: &[u32], out: &mut [f64]) {
        assert_eq!(rows.len(), out.len(), "output length mismatch");
        if rows.is_empty() {
            return;
        }
        assert_eq!(c.width(), self.n_features, "feature width mismatch");
        out.fill(0.0);
        const BLOCK: usize = 128;
        for (bi, chunk) in rows.chunks(BLOCK).enumerate() {
            let acc = &mut out[bi * BLOCK..bi * BLOCK + chunk.len()];
            for t in &self.trees {
                const LANES: usize = 8;
                let mut i = 0;
                while i + LANES <= chunk.len() {
                    let xb: [&[u64]; LANES] =
                        std::array::from_fn(|l| c.bits_row(chunk[i + l] as usize));
                    let xn: [&[f64]; LANES] =
                        std::array::from_fn(|l| c.num_row(chunk[i + l] as usize));
                    let mut at = [0u32; LANES];
                    for _ in 0..t.depth {
                        let mut parked = true;
                        for l in 0..LANES {
                            let next = t.cstep(xb[l], xn[l], at[l]);
                            parked &= next == at[l];
                            at[l] = next;
                        }
                        if parked {
                            break;
                        }
                    }
                    for l in 0..LANES {
                        acc[i + l] += t.val[at[l] as usize];
                    }
                    i += LANES;
                }
                while i < chunk.len() {
                    let r = chunk[i] as usize;
                    acc[i] += t.cleaf(c.bits_row(r), c.num_row(r));
                    i += 1;
                }
            }
        }
        let n = self.n_trees as f64;
        for v in out.iter_mut() {
            *v /= n;
        }
    }
}

/// A fitted extra-trees regression forest.
#[derive(Clone, Debug)]
pub struct ExtraTrees {
    trees: Vec<Tree>,
    /// SoA mirror of `trees`, built once at fit time for batch traversal.
    packed: Vec<PackedTree>,
    pub params: ForestParams,
    n_features: usize,
    /// Accumulated variance reduction per (binarized) feature across every
    /// split of every tree, normalized to sum to 1 (all zeros when no tree
    /// ever split).
    importance: Vec<f64>,
}

/// Reusable per-tree buffers for `grow`: without these every candidate
/// split allocates two partition vectors, which dominates fit time.
#[derive(Default)]
struct GrowScratch {
    cand: Vec<usize>,
    left_ys: Vec<f64>,
    right_ys: Vec<f64>,
}

/// Column-major view of the training set, built once per fit so the
/// per-candidate min/max and partition passes scan one contiguous column
/// instead of chasing a row pointer per sample.
struct Cols<'a> {
    data: &'a [f64],
    n: usize,
    d: usize,
}

impl Cols<'_> {
    #[inline(always)]
    fn get(&self, i: usize, f: usize) -> f64 {
        self.data[f * self.n + i]
    }
}

fn mean(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    let m = mean(ys, idx);
    idx.iter().map(|&i| (ys[i] - m).powi(2)).sum()
}

#[allow(clippy::too_many_arguments)]
fn grow(
    xs: &Cols<'_>,
    ys: &[f64],
    idx: Vec<usize>,
    nodes: &mut Vec<Node>,
    params: &ForestParams,
    rng: &mut StdRng,
    importance: &mut [f64],
    scratch: &mut GrowScratch,
) -> usize {
    let n_features = xs.d;
    let make_leaf = |nodes: &mut Vec<Node>, idx: &[usize]| {
        nodes.push(Node::Leaf {
            value: mean(ys, idx),
        });
        nodes.len() - 1
    };

    if idx.len() < params.min_samples_leaf.max(2) {
        return make_leaf(nodes, &idx);
    }
    let first_y = ys[idx[0]];
    if idx.iter().all(|&i| (ys[i] - first_y).abs() < 1e-15) {
        return make_leaf(nodes, &idx);
    }

    // Candidate features with non-constant values at this node.
    let k = params.k_features.unwrap_or(n_features).min(n_features);
    scratch.cand.clear();
    scratch.cand.extend(0..n_features);
    // Partial Fisher–Yates to draw k distinct features.
    for i in 0..k.min(n_features) {
        let j = rng.gen_range(i..n_features);
        scratch.cand.swap(i, j);
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let parent_sse = sse(ys, &idx);
    for ci in 0..k {
        let f = scratch.cand[ci];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in &idx {
            lo = lo.min(xs.get(i, f));
            hi = hi.max(xs.get(i, f));
        }
        if hi - lo < 1e-12 {
            continue;
        }
        let threshold = rng.gen_range(lo..hi).max(lo + (hi - lo) * 1e-9);
        // One partition pass gathers each side's targets contiguously and
        // accumulates their sums in the same left-to-right order `mean`
        // would, so the means — and the sse passes below — are bit-identical
        // to the separate filter+mean+sse formulation.
        scratch.left_ys.clear();
        scratch.right_ys.clear();
        let (mut sum_l, mut sum_r) = (0.0f64, 0.0f64);
        for &i in &idx {
            let y = ys[i];
            if xs.get(i, f) < threshold {
                scratch.left_ys.push(y);
                sum_l += y;
            } else {
                scratch.right_ys.push(y);
                sum_r += y;
            }
        }
        if scratch.left_ys.is_empty() || scratch.left_ys.len() == idx.len() {
            continue;
        }
        let m_l = sum_l / scratch.left_ys.len() as f64;
        let m_r = sum_r / scratch.right_ys.len() as f64;
        let sse_l: f64 = scratch.left_ys.iter().map(|&y| (y - m_l).powi(2)).sum();
        let sse_r: f64 = scratch.right_ys.iter().map(|&y| (y - m_r).powi(2)).sum();
        let score = parent_sse - sse_l - sse_r;
        if best.map(|(_, _, s)| score > s).unwrap_or(true) {
            best = Some((f, threshold, score));
        }
    }

    let Some((feature, threshold, gain)) = best else {
        return make_leaf(nodes, &idx);
    };
    importance[feature] += gain.max(0.0);
    let left_idx: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| xs.get(i, feature) < threshold)
        .collect();
    let right_idx: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| xs.get(i, feature) >= threshold)
        .collect();

    let at = nodes.len();
    nodes.push(Node::Leaf { value: 0.0 }); // placeholder
    let left = grow(xs, ys, left_idx, nodes, params, rng, importance, scratch);
    let right = grow(xs, ys, right_idx, nodes, params, rng, importance, scratch);
    nodes[at] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    at
}

impl ExtraTrees {
    /// Fits the forest on binarized configurations `xs` with targets `ys`.
    ///
    /// Trees are grown in parallel on the rayon pool: each tree draws its
    /// own rng from `seed + tree_index`, so the forest is identical at any
    /// thread count. Per-tree importance contributions are summed in tree
    /// order, keeping the floating-point reduction scheduling-independent.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: ForestParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit on an empty training set");
        let n_features = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == n_features));
        // Transpose once; every tree's split passes then scan contiguous
        // columns (values and visit order unchanged, so trees are
        // bit-identical to the row-major layout).
        let n = xs.len();
        let mut colmaj = vec![0.0; n * n_features];
        for (i, x) in xs.iter().enumerate() {
            for (f, &v) in x.iter().enumerate() {
                colmaj[f * n + i] = v;
            }
        }
        let cols = Cols {
            data: &colmaj,
            n,
            d: n_features,
        };
        let tree_ids: Vec<u64> = (0..params.n_trees as u64).collect();
        let grown: Vec<(Tree, Vec<f64>)> = rayon::par_map_slice(&tree_ids, |&t| {
            let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t));
            let mut nodes = Vec::new();
            let mut importance = vec![0.0; n_features];
            let mut scratch = GrowScratch::default();
            let root = grow(
                &cols,
                ys,
                (0..n).collect(),
                &mut nodes,
                &params,
                &mut rng,
                &mut importance,
                &mut scratch,
            );
            debug_assert_eq!(root, 0);
            (Tree { nodes }, importance)
        });
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut importance = vec![0.0; n_features];
        for (tree, imp) in grown {
            trees.push(tree);
            for (acc, v) in importance.iter_mut().zip(imp) {
                *acc += v;
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            importance.iter_mut().for_each(|v| *v /= total);
        }
        let packed = trees.iter().map(PackedTree::pack).collect();
        ExtraTrees {
            trees,
            packed,
            params,
            n_features,
            importance,
        }
    }

    /// Normalized per-feature importance (variance reduction attribution).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Predicts the target for one configuration (mean over trees).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let m = FeatureMatrix::from_rows(xs);
        let rows: Vec<u32> = (0..xs.len() as u32).collect();
        let mut out = Vec::new();
        self.predict_rows_into(&m, &rows, &mut out);
        out
    }

    /// Predicts every row of a flat matrix.
    pub fn predict_rows(&self, m: &FeatureMatrix) -> Vec<f64> {
        let rows: Vec<u32> = (0..m.n_rows() as u32).collect();
        let mut out = Vec::new();
        self.predict_rows_into(m, &rows, &mut out);
        out
    }

    /// Rewrites the forest's node feature indices against a compact-matrix
    /// schema, for repeated scoring of the same (large) candidate pool.
    pub fn compile(&self, schema: &CompactMatrix) -> CompiledForest {
        let mut out = CompiledForest::empty();
        self.compile_into(schema, &mut out);
        out
    }

    /// [`ExtraTrees::compile`] into a reusable buffer: node and leaf
    /// vectors are cloned in place (`clone_from`), so a search loop that
    /// refits and recompiles every round reuses the previous round's
    /// allocations instead of freeing and reallocating them. The filled
    /// forest is identical to a fresh [`ExtraTrees::compile`].
    pub fn compile_into(&self, schema: &CompactMatrix, out: &mut CompiledForest) {
        assert_eq!(schema.width(), self.n_features, "feature width mismatch");
        let kinds = schema.kinds();
        out.trees.truncate(self.packed.len());
        while out.trees.len() < self.packed.len() {
            out.trees.push(PackedTree {
                nodes: Vec::new(),
                val: Vec::new(),
                depth: 0,
            });
        }
        for (dst, src) in out.trees.iter_mut().zip(&self.packed) {
            dst.nodes.clone_from(&src.nodes);
            dst.val.clone_from(&src.val);
            dst.depth = src.depth;
            for n in &mut dst.nodes {
                n.feat = kinds[n.feat as usize];
            }
        }
        out.n_trees = self.trees.len();
        out.n_features = self.n_features;
    }

    /// Predicts the selected `rows` of `m` into `out` (cleared first).
    ///
    /// Bit-identical to calling [`predict`](Self::predict) per row: each
    /// row's leaf values are accumulated in ascending tree order from 0.0
    /// and divided once, exactly the scalar path's reduction. Rows are
    /// processed in cache-resident blocks with the tree loop outside, so a
    /// tree's SoA arrays stay hot across the whole block, and four rows
    /// walk each tree at once to overlap the dependent node→child loads.
    pub fn predict_rows_into(&self, m: &FeatureMatrix, rows: &[u32], out: &mut Vec<f64>) {
        out.clear();
        if rows.is_empty() {
            return;
        }
        assert_eq!(m.width(), self.n_features, "feature width mismatch");
        out.resize(rows.len(), 0.0);
        const BLOCK: usize = 128;
        for (bi, chunk) in rows.chunks(BLOCK).enumerate() {
            let acc = &mut out[bi * BLOCK..bi * BLOCK + chunk.len()];
            for t in &self.packed {
                const LANES: usize = 8;
                let mut i = 0;
                while i + LANES <= chunk.len() {
                    let x: [&[f64]; LANES] = std::array::from_fn(|l| m.row(chunk[i + l] as usize));
                    let mut at = [0u32; LANES];
                    // Walk until every lane self-loops at a leaf; bounded by
                    // the tree depth, but usually far shorter because the
                    // deepest branch is rarely hit by any of the eight rows.
                    for _ in 0..t.depth {
                        let mut parked = true;
                        for l in 0..LANES {
                            let next = t.step(x[l], at[l]);
                            parked &= next == at[l];
                            at[l] = next;
                        }
                        if parked {
                            break;
                        }
                    }
                    for l in 0..LANES {
                        acc[i + l] += t.val[at[l] as usize];
                    }
                    i += LANES;
                }
                while i < chunk.len() {
                    acc[i] += t.leaf(m.row(chunk[i] as usize));
                    i += 1;
                }
            }
        }
        let n = self.trees.len() as f64;
        for v in out.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3*x0 + (x1 one-hot group effect) + noise-free interaction.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x0 = rng.gen_range(0.0..1.0f64);
            let cat = rng.gen_range(0..3usize);
            let mut x = vec![x0, 0.0, 0.0, 0.0];
            x[1 + cat] = 1.0;
            let y = 3.0 * x0 + [0.0, 5.0, -2.0][cat] + x0 * [1.0, 0.0, 2.0][cat];
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn fits_and_generalizes_synthetic() {
        let (xs, ys) = synthetic(400, 1);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let (xt, yt) = synthetic(100, 2);
        let mut sse = 0.0;
        let mut var = 0.0;
        let m: f64 = yt.iter().sum::<f64>() / yt.len() as f64;
        for (x, y) in xt.iter().zip(&yt) {
            sse += (model.predict(x) - y).powi(2);
            var += (y - m).powi(2);
        }
        let r2 = 1.0 - sse / var;
        assert!(r2 > 0.85, "R^2 = {r2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = synthetic(100, 3);
        let a = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let b = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let x = &xs[0];
        assert_eq!(a.predict(x), b.predict(x));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.5; 20];
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        assert!((model.predict(&[3.0]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_a_leaf() {
        let model = ExtraTrees::fit(&[vec![0.0, 1.0]], &[2.0], ForestParams::default());
        assert_eq!(model.predict(&[9.0, 9.0]), 2.0);
    }

    #[test]
    fn ranks_categorical_effects() {
        // Categories with clearly different means must be ranked correctly.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rep in 0..30 {
            for cat in 0..3 {
                let mut x = vec![0.0; 3];
                x[cat] = 1.0;
                xs.push(x);
                ys.push([10.0, 1.0, 5.0][cat] + 0.01 * rep as f64);
            }
        }
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let p0 = model.predict(&[1.0, 0.0, 0.0]);
        let p1 = model.predict(&[0.0, 1.0, 0.0]);
        let p2 = model.predict(&[0.0, 0.0, 1.0]);
        assert!(p1 < p2 && p2 < p0, "{p0} {p1} {p2}");
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // y depends only on x0; x1 is noise.
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let x0 = rng.gen_range(0.0..1.0f64);
            let x1 = rng.gen_range(0.0..1.0f64);
            xs.push(vec![x0, x1]);
            ys.push(10.0 * x0);
        }
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let imp = model.feature_importance();
        assert!(imp[0] > 0.8, "informative feature dominates: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let _ = ExtraTrees::fit(&[], &[], ForestParams::default());
    }

    #[test]
    fn packed_batch_prediction_is_bit_identical_to_scalar() {
        let (xs, ys) = synthetic(500, 11);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let (xt, _) = synthetic(333, 12); // odd size exercises the remainder lanes
        let batch = model.predict_batch(&xt);
        for (x, p) in xt.iter().zip(&batch) {
            assert_eq!(model.predict(x).to_bits(), p.to_bits());
        }
    }

    #[test]
    fn selected_rows_match_full_matrix() {
        let (xs, ys) = synthetic(200, 13);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let m = FeatureMatrix::from_rows(&xs);
        let full = model.predict_rows(&m);
        let sel: Vec<u32> = (0..xs.len() as u32).rev().step_by(3).collect();
        let mut out = Vec::new();
        model.predict_rows_into(&m, &sel, &mut out);
        for (r, p) in sel.iter().zip(&out) {
            assert_eq!(full[*r as usize].to_bits(), p.to_bits());
        }
    }

    #[test]
    fn compiled_forest_matches_flat_matrix_bitwise() {
        // Mixed binary (one-hot) and numeric columns, odd row count for the
        // remainder lanes; compiled traversal must reproduce the flat-matrix
        // predictions bit for bit.
        let (xs, ys) = synthetic(450, 21);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let (xt, _) = synthetic(301, 22);
        let m = FeatureMatrix::from_rows(&xt);
        let c = crate::binarize::CompactMatrix::from_matrix(&m);
        let rows: Vec<u32> = (0..m.n_rows() as u32).collect();
        let (mut flat, mut compact) = (Vec::new(), Vec::new());
        model.predict_rows_into(&m, &rows, &mut flat);
        model.compile(&c).predict_rows_into(&c, &rows, &mut compact);
        for (a, b) in flat.iter().zip(&compact) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Strided selection goes through the same gather path.
        let sel: Vec<u32> = (0..m.n_rows() as u32).rev().step_by(7).collect();
        model.predict_rows_into(&m, &sel, &mut flat);
        model.compile(&c).predict_rows_into(&c, &sel, &mut compact);
        assert_eq!(flat, compact);
    }

    #[test]
    fn compiled_forest_all_numeric_columns() {
        // No binary column at all: the bitset block is empty and every node
        // reads the numeric side.
        let mut rng = StdRng::seed_from_u64(31);
        let xs: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.gen_range(0.1..0.9), rng.gen_range(0.1..0.9)])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1]).collect();
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let m = FeatureMatrix::from_rows(&xs);
        let c = crate::binarize::CompactMatrix::from_matrix(&m);
        let rows: Vec<u32> = (0..m.n_rows() as u32).collect();
        let (mut flat, mut compact) = (Vec::new(), Vec::new());
        model.predict_rows_into(&m, &rows, &mut flat);
        model.compile(&c).predict_rows_into(&c, &rows, &mut compact);
        assert_eq!(flat, compact);
    }

    #[test]
    fn empty_batch_predicts_empty() {
        let (xs, ys) = synthetic(50, 14);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        assert!(model.predict_batch(&[]).is_empty());
    }
}
