//! Extremely randomized trees regressor (Geurts, Ernst & Wehenkel 2006),
//! the surrogate model the paper adopts "due to their ability to handle the
//! binarized parameters using recursive partitioning and to model nonlinear
//! interactions among the parameters" (§V).
//!
//! Implemented from scratch: each tree is grown on the full training set;
//! at every node, `k_features` attributes are drawn at random, each gets a
//! uniformly random cut-point between its node-local min and max, and the
//! split with the best variance reduction wins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the forest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestParams {
    pub n_trees: usize,
    /// Nodes with fewer samples become leaves.
    pub min_samples_leaf: usize,
    /// Random attributes examined per split; `None` = all attributes.
    pub k_features: Option<usize>,
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 30,
            min_samples_leaf: 2,
            k_features: None,
            seed: 0xBA22ACDA,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Clone, Debug)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature] < *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A fitted extra-trees regression forest.
#[derive(Clone, Debug)]
pub struct ExtraTrees {
    trees: Vec<Tree>,
    pub params: ForestParams,
    n_features: usize,
    /// Accumulated variance reduction per (binarized) feature across every
    /// split of every tree, normalized to sum to 1 (all zeros when no tree
    /// ever split).
    importance: Vec<f64>,
}

fn mean(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    let m = mean(ys, idx);
    idx.iter().map(|&i| (ys[i] - m).powi(2)).sum()
}

fn grow(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: Vec<usize>,
    nodes: &mut Vec<Node>,
    params: &ForestParams,
    rng: &mut StdRng,
    importance: &mut [f64],
) -> usize {
    let n_features = xs[0].len();
    let make_leaf = |nodes: &mut Vec<Node>, idx: &[usize]| {
        nodes.push(Node::Leaf {
            value: mean(ys, idx),
        });
        nodes.len() - 1
    };

    if idx.len() < params.min_samples_leaf.max(2) {
        return make_leaf(nodes, &idx);
    }
    let first_y = ys[idx[0]];
    if idx.iter().all(|&i| (ys[i] - first_y).abs() < 1e-15) {
        return make_leaf(nodes, &idx);
    }

    // Candidate features with non-constant values at this node.
    let k = params.k_features.unwrap_or(n_features).min(n_features);
    let mut candidates: Vec<usize> = (0..n_features).collect();
    // Partial Fisher–Yates to draw k distinct features.
    for i in 0..k.min(candidates.len()) {
        let j = rng.gen_range(i..candidates.len());
        candidates.swap(i, j);
    }
    candidates.truncate(k);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, score)
    let parent_sse = sse(ys, &idx);
    for &f in &candidates {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in &idx {
            lo = lo.min(xs[i][f]);
            hi = hi.max(xs[i][f]);
        }
        if hi - lo < 1e-12 {
            continue;
        }
        let threshold = rng.gen_range(lo..hi).max(lo + (hi - lo) * 1e-9);
        let left: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| xs[i][f] < threshold)
            .collect();
        if left.is_empty() || left.len() == idx.len() {
            continue;
        }
        let right: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| xs[i][f] >= threshold)
            .collect();
        let score = parent_sse - sse(ys, &left) - sse(ys, &right);
        if best.map(|(_, _, s)| score > s).unwrap_or(true) {
            best = Some((f, threshold, score));
        }
    }

    let Some((feature, threshold, gain)) = best else {
        return make_leaf(nodes, &idx);
    };
    importance[feature] += gain.max(0.0);
    let left_idx: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| xs[i][feature] < threshold)
        .collect();
    let right_idx: Vec<usize> = idx
        .iter()
        .copied()
        .filter(|&i| xs[i][feature] >= threshold)
        .collect();

    let at = nodes.len();
    nodes.push(Node::Leaf { value: 0.0 }); // placeholder
    let left = grow(xs, ys, left_idx, nodes, params, rng, importance);
    let right = grow(xs, ys, right_idx, nodes, params, rng, importance);
    nodes[at] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    at
}

impl ExtraTrees {
    /// Fits the forest on binarized configurations `xs` with targets `ys`.
    ///
    /// Trees are grown in parallel on the rayon pool: each tree draws its
    /// own rng from `seed + tree_index`, so the forest is identical at any
    /// thread count. Per-tree importance contributions are summed in tree
    /// order, keeping the floating-point reduction scheduling-independent.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: ForestParams) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit on an empty training set");
        let n_features = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == n_features));
        let tree_ids: Vec<u64> = (0..params.n_trees as u64).collect();
        let grown: Vec<(Tree, Vec<f64>)> = rayon::par_map_slice(&tree_ids, |&t| {
            let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t));
            let mut nodes = Vec::new();
            let mut importance = vec![0.0; n_features];
            let root = grow(
                xs,
                ys,
                (0..xs.len()).collect(),
                &mut nodes,
                &params,
                &mut rng,
                &mut importance,
            );
            debug_assert_eq!(root, 0);
            (Tree { nodes }, importance)
        });
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut importance = vec![0.0; n_features];
        for (tree, imp) in grown {
            trees.push(tree);
            for (acc, v) in importance.iter_mut().zip(imp) {
                *acc += v;
            }
        }
        let total: f64 = importance.iter().sum();
        if total > 0.0 {
            importance.iter_mut().for_each(|v| *v /= total);
        }
        ExtraTrees {
            trees,
            params,
            n_features,
            importance,
        }
    }

    /// Normalized per-feature importance (variance reduction attribution).
    pub fn feature_importance(&self) -> &[f64] {
        &self.importance
    }

    /// Predicts the target for one configuration (mean over trees).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature width mismatch");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 3*x0 + (x1 one-hot group effect) + noise-free interaction.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x0 = rng.gen_range(0.0..1.0f64);
            let cat = rng.gen_range(0..3usize);
            let mut x = vec![x0, 0.0, 0.0, 0.0];
            x[1 + cat] = 1.0;
            let y = 3.0 * x0 + [0.0, 5.0, -2.0][cat] + x0 * [1.0, 0.0, 2.0][cat];
            xs.push(x);
            ys.push(y);
        }
        (xs, ys)
    }

    #[test]
    fn fits_and_generalizes_synthetic() {
        let (xs, ys) = synthetic(400, 1);
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let (xt, yt) = synthetic(100, 2);
        let mut sse = 0.0;
        let mut var = 0.0;
        let m: f64 = yt.iter().sum::<f64>() / yt.len() as f64;
        for (x, y) in xt.iter().zip(&yt) {
            sse += (model.predict(x) - y).powi(2);
            var += (y - m).powi(2);
        }
        let r2 = 1.0 - sse / var;
        assert!(r2 > 0.85, "R^2 = {r2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = synthetic(100, 3);
        let a = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let b = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let x = &xs[0];
        assert_eq!(a.predict(x), b.predict(x));
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.5; 20];
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        assert!((model.predict(&[3.0]) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_is_a_leaf() {
        let model = ExtraTrees::fit(&[vec![0.0, 1.0]], &[2.0], ForestParams::default());
        assert_eq!(model.predict(&[9.0, 9.0]), 2.0);
    }

    #[test]
    fn ranks_categorical_effects() {
        // Categories with clearly different means must be ranked correctly.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rep in 0..30 {
            for cat in 0..3 {
                let mut x = vec![0.0; 3];
                x[cat] = 1.0;
                xs.push(x);
                ys.push([10.0, 1.0, 5.0][cat] + 0.01 * rep as f64);
            }
        }
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let p0 = model.predict(&[1.0, 0.0, 0.0]);
        let p1 = model.predict(&[0.0, 1.0, 0.0]);
        let p2 = model.predict(&[0.0, 0.0, 1.0]);
        assert!(p1 < p2 && p2 < p0, "{p0} {p1} {p2}");
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // y depends only on x0; x1 is noise.
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let x0 = rng.gen_range(0.0..1.0f64);
            let x1 = rng.gen_range(0.0..1.0f64);
            xs.push(vec![x0, x1]);
            ys.push(10.0 * x0);
        }
        let model = ExtraTrees::fit(&xs, &ys, ForestParams::default());
        let imp = model.feature_importance();
        assert!(imp[0] > 0.8, "informative feature dominates: {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let _ = ExtraTrees::fit(&[], &[], ForestParams::default());
    }
}
