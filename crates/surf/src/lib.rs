//! SURF — Search Using Random Forest (paper §V).
//!
//! A model-based autotuning search: sample a small batch of configurations,
//! measure them, fit an extremely-randomized-trees surrogate over the
//! binarized parameter space, then iteratively evaluate the configurations
//! the surrogate predicts to be fastest, retraining after every batch
//! (Algorithm 2 of the paper).
//!
//! The crate is deliberately independent of the tensor pipeline: a
//! configuration is an opaque `u128` id, the caller supplies a feature
//! encoding ([`binarize::FeatureSpace`]) and an evaluation function. The
//! same machinery therefore serves the paper's GPU search, the ablation
//! benchmarks, and the unit tests' synthetic landscapes.

pub mod baselines;
pub mod binarize;
pub mod fault;
pub mod forest;
pub mod search;

pub use baselines::{
    contraction_order_annealing, exhaustive_search, hill_climb, random_search, simulated_annealing,
};
pub use binarize::{Feature, FeatureSpace};
pub use fault::{unit as fault_unit, FaultPlan, FaultyEvaluator, InjectedFault};
pub use forest::{CompiledForest, ExtraTrees, ForestParams};
pub use search::{
    surf_search, surf_search_parallel, surf_search_serial, EvalFault, ParallelEvaluator,
    SearchError, SearchProvenance, SearchStatus, SurfParams, SurfResult, UnpromisingStop,
};
