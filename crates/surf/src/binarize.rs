//! Feature binarization (paper §V).
//!
//! The decomposition (PERMUTE) parameters "do not admit a natural ordinal
//! relationship", so the paper one-hot encodes them before fitting the
//! surrogate ("feature binarization"). Integer parameters such as unroll
//! factors stay numeric.

/// One tunable parameter of a configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum Feature {
    /// Unordered choice among `cardinality` alternatives → one-hot encoded.
    Categorical { name: String, cardinality: usize },
    /// Ordered integer parameter → single numeric column, min-max scaled.
    Integer { name: String, min: f64, max: f64 },
}

impl Feature {
    pub fn name(&self) -> &str {
        match self {
            Feature::Categorical { name, .. } | Feature::Integer { name, .. } => name,
        }
    }

    /// Number of columns this feature occupies after binarization.
    pub fn width(&self) -> usize {
        match self {
            Feature::Categorical { cardinality, .. } => *cardinality,
            Feature::Integer { .. } => 1,
        }
    }
}

/// An ordered list of features describing a configuration vector.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureSpace {
    pub features: Vec<Feature>,
}

impl FeatureSpace {
    pub fn new(features: Vec<Feature>) -> Self {
        FeatureSpace { features }
    }

    pub fn categorical(mut self, name: impl Into<String>, cardinality: usize) -> Self {
        assert!(cardinality >= 1);
        self.features.push(Feature::Categorical {
            name: name.into(),
            cardinality,
        });
        self
    }

    pub fn integer(mut self, name: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(max >= min);
        self.features.push(Feature::Integer {
            name: name.into(),
            min,
            max,
        });
        self
    }

    /// Total binarized width.
    pub fn width(&self) -> usize {
        self.features.iter().map(|f| f.width()).sum()
    }

    /// Binarizes one raw configuration vector (one value per feature:
    /// category index for categoricals, value for integers).
    pub fn binarize(&self, raw: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width());
        self.binarize_into(raw, &mut out);
        out
    }

    /// Binarizes into a caller-provided buffer (appended, not cleared), so
    /// hot paths can pack many configurations into one flat allocation.
    pub fn binarize_into(&self, raw: &[f64], out: &mut Vec<f64>) {
        assert_eq!(raw.len(), self.features.len(), "raw vector length");
        out.reserve(self.width());
        for (f, &v) in self.features.iter().zip(raw) {
            match f {
                Feature::Categorical { cardinality, name } => {
                    let idx = v as usize;
                    assert!(
                        (v.fract() == 0.0) && idx < *cardinality,
                        "category {v} out of range for {name}"
                    );
                    for c in 0..*cardinality {
                        out.push(if c == idx { 1.0 } else { 0.0 });
                    }
                }
                Feature::Integer { min, max, .. } => {
                    let span = (max - min).max(1e-12);
                    out.push((v - min) / span);
                }
            }
        }
    }
}

/// A flat row-major matrix of binarized feature vectors: one contiguous
/// buffer instead of a `Vec<Vec<f64>>`, so batch featurization and SoA
/// forest traversal touch a single allocation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    width: usize,
}

impl FeatureMatrix {
    /// An empty matrix whose rows are `width` columns wide.
    pub fn new(width: usize) -> Self {
        FeatureMatrix {
            data: Vec::new(),
            width,
        }
    }

    /// Pre-allocates space for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        FeatureMatrix {
            data: Vec::with_capacity(width * rows),
            width,
        }
    }

    /// Packs an existing ragged batch into a flat matrix.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let width = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut m = FeatureMatrix::with_capacity(width, rows.len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn n_rows(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one row; its length must match the matrix width.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Returns a mutable spare row appended to the matrix, for in-place
    /// filling via `FeatureSpace::binarize_into`-style writers.
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<f64>)) {
        let before = self.data.len();
        fill(&mut self.data);
        assert_eq!(
            self.data.len() - before,
            self.width,
            "row width mismatch from writer"
        );
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }
}

/// Tag bit marking a compact column as numeric (stored as `f64`); untagged
/// columns are binary and stored as one bit.
pub(crate) const NUMERIC_COL: u32 = 1 << 31;

/// A compressed feature matrix for forest traversal: columns whose values
/// are all exactly 0.0 or 1.0 (the one-hot encodings, which dominate the
/// binarized width) collapse to one bit each, the rest stay `f64`. A row
/// shrinks from `width × 8` bytes to a few machine words, so blocked tree
/// traversal stays cache-resident over pools that would otherwise stream
/// from memory. Values are recovered exactly (a bit rereads as 0.0/1.0),
/// so predictions are bit-identical to the flat matrix.
#[derive(Clone, Debug)]
pub struct CompactMatrix {
    /// Per original column: `NUMERIC_COL | numeric index` or a bit index.
    kinds: Vec<u32>,
    words_per_row: usize,
    bits: Vec<u64>,
    n_num: usize,
    num: Vec<f64>,
    n_rows: usize,
    width: usize,
}

impl CompactMatrix {
    pub fn from_matrix(m: &FeatureMatrix) -> Self {
        let width = m.width();
        let n_rows = m.n_rows();
        let mut binary = vec![true; width];
        for i in 0..n_rows {
            for (b, &v) in binary.iter_mut().zip(m.row(i)) {
                *b &= v == 0.0 || v == 1.0;
            }
        }
        let mut kinds = Vec::with_capacity(width);
        let (mut n_bits, mut n_num) = (0u32, 0u32);
        for &b in &binary {
            if b {
                kinds.push(n_bits);
                n_bits += 1;
            } else {
                kinds.push(NUMERIC_COL | n_num);
                n_num += 1;
            }
        }
        let words_per_row = (n_bits as usize).div_ceil(64).max(1);
        let mut bits = vec![0u64; words_per_row * n_rows];
        let mut num = vec![0.0f64; n_num as usize * n_rows];
        for i in 0..n_rows {
            let row = m.row(i);
            let bw = &mut bits[i * words_per_row..(i + 1) * words_per_row];
            let nw = &mut num[i * n_num as usize..(i + 1) * n_num as usize];
            for (f, &v) in row.iter().enumerate() {
                let k = kinds[f];
                if k & NUMERIC_COL != 0 {
                    nw[(k & !NUMERIC_COL) as usize] = v;
                } else if v == 1.0 {
                    bw[(k >> 6) as usize] |= 1u64 << (k & 63);
                }
            }
        }
        CompactMatrix {
            kinds,
            words_per_row,
            bits,
            n_num: n_num as usize,
            num,
            n_rows,
            width,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub(crate) fn kinds(&self) -> &[u32] {
        &self.kinds
    }

    #[inline]
    pub(crate) fn bits_row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    #[inline]
    pub(crate) fn num_row(&self, i: usize) -> &[f64] {
        &self.num[i * self.n_num..(i + 1) * self.n_num]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_sums_cardinalities() {
        let fs = FeatureSpace::default()
            .categorical("tx", 4)
            .categorical("ty", 5)
            .integer("uf", 1.0, 10.0);
        assert_eq!(fs.width(), 10);
    }

    #[test]
    fn one_hot_encoding() {
        let fs = FeatureSpace::default()
            .categorical("tx", 3)
            .integer("uf", 1.0, 5.0);
        let v = fs.binarize(&[2.0, 3.0]);
        assert_eq!(v, vec![0.0, 0.0, 1.0, 0.5]);
    }

    #[test]
    fn integer_scaling_endpoints() {
        let fs = FeatureSpace::default().integer("uf", 1.0, 10.0);
        assert_eq!(fs.binarize(&[1.0]), vec![0.0]);
        assert_eq!(fs.binarize(&[10.0]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn category_bounds_checked() {
        let fs = FeatureSpace::default().categorical("tx", 3);
        let _ = fs.binarize(&[3.0]);
    }

    #[test]
    fn degenerate_integer_range() {
        let fs = FeatureSpace::default().integer("uf", 2.0, 2.0);
        let v = fs.binarize(&[2.0]);
        assert_eq!(v.len(), 1);
        assert!(v[0].is_finite());
    }
}
