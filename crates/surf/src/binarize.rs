//! Feature binarization (paper §V).
//!
//! The decomposition (PERMUTE) parameters "do not admit a natural ordinal
//! relationship", so the paper one-hot encodes them before fitting the
//! surrogate ("feature binarization"). Integer parameters such as unroll
//! factors stay numeric.

/// One tunable parameter of a configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum Feature {
    /// Unordered choice among `cardinality` alternatives → one-hot encoded.
    Categorical { name: String, cardinality: usize },
    /// Ordered integer parameter → single numeric column, min-max scaled.
    Integer { name: String, min: f64, max: f64 },
}

impl Feature {
    pub fn name(&self) -> &str {
        match self {
            Feature::Categorical { name, .. } | Feature::Integer { name, .. } => name,
        }
    }

    /// Number of columns this feature occupies after binarization.
    pub fn width(&self) -> usize {
        match self {
            Feature::Categorical { cardinality, .. } => *cardinality,
            Feature::Integer { .. } => 1,
        }
    }
}

/// An ordered list of features describing a configuration vector.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FeatureSpace {
    pub features: Vec<Feature>,
}

impl FeatureSpace {
    pub fn new(features: Vec<Feature>) -> Self {
        FeatureSpace { features }
    }

    pub fn categorical(mut self, name: impl Into<String>, cardinality: usize) -> Self {
        assert!(cardinality >= 1);
        self.features.push(Feature::Categorical {
            name: name.into(),
            cardinality,
        });
        self
    }

    pub fn integer(mut self, name: impl Into<String>, min: f64, max: f64) -> Self {
        assert!(max >= min);
        self.features.push(Feature::Integer {
            name: name.into(),
            min,
            max,
        });
        self
    }

    /// Total binarized width.
    pub fn width(&self) -> usize {
        self.features.iter().map(|f| f.width()).sum()
    }

    /// Binarizes one raw configuration vector (one value per feature:
    /// category index for categoricals, value for integers).
    pub fn binarize(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.features.len(), "raw vector length");
        let mut out = Vec::with_capacity(self.width());
        for (f, &v) in self.features.iter().zip(raw) {
            match f {
                Feature::Categorical { cardinality, name } => {
                    let idx = v as usize;
                    assert!(
                        (v.fract() == 0.0) && idx < *cardinality,
                        "category {v} out of range for {name}"
                    );
                    for c in 0..*cardinality {
                        out.push(if c == idx { 1.0 } else { 0.0 });
                    }
                }
                Feature::Integer { min, max, .. } => {
                    let span = (max - min).max(1e-12);
                    out.push((v - min) / span);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_sums_cardinalities() {
        let fs = FeatureSpace::default()
            .categorical("tx", 4)
            .categorical("ty", 5)
            .integer("uf", 1.0, 10.0);
        assert_eq!(fs.width(), 10);
    }

    #[test]
    fn one_hot_encoding() {
        let fs = FeatureSpace::default()
            .categorical("tx", 3)
            .integer("uf", 1.0, 5.0);
        let v = fs.binarize(&[2.0, 3.0]);
        assert_eq!(v, vec![0.0, 0.0, 1.0, 0.5]);
    }

    #[test]
    fn integer_scaling_endpoints() {
        let fs = FeatureSpace::default().integer("uf", 1.0, 10.0);
        assert_eq!(fs.binarize(&[1.0]), vec![0.0]);
        assert_eq!(fs.binarize(&[10.0]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn category_bounds_checked() {
        let fs = FeatureSpace::default().categorical("tx", 3);
        let _ = fs.binarize(&[3.0]);
    }

    #[test]
    fn degenerate_integer_range() {
        let fs = FeatureSpace::default().integer("uf", 2.0, 2.0);
        let v = fs.binarize(&[2.0]);
        assert_eq!(v.len(), 1);
        assert!(v[0].is_finite());
    }
}
