//! Baseline search strategies: uniform random sampling and brute-force
//! enumeration (the paper contrasts SURF with the earlier brute-force
//! search of [Rivera 2014] and with the 23-day cost of enumerating the full
//! Lg3t space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a baseline search.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    pub best_id: u128,
    pub best_y: f64,
    pub n_evals: usize,
}

/// Evaluates `n` configurations drawn uniformly without replacement.
pub fn random_search(
    pool: &[u128],
    mut evaluate: impl FnMut(u128) -> f64,
    n: usize,
    seed: u64,
) -> BaselineResult {
    assert!(!pool.is_empty(), "empty configuration pool");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u128> = pool.to_vec();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids.truncate(n.clamp(1, pool.len()));
    let mut best_id = ids[0];
    let mut best_y = evaluate(best_id);
    for &id in &ids[1..] {
        let y = evaluate(id);
        // NaN-safe: a non-finite incumbent yields to any finite candidate.
        if y.total_cmp(&best_y).is_lt() || (!best_y.is_finite() && y.is_finite()) {
            best_id = id;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: ids.len(),
    }
}

/// Evaluates every configuration (only for spaces small enough to afford).
pub fn exhaustive_search(pool: &[u128], mut evaluate: impl FnMut(u128) -> f64) -> BaselineResult {
    assert!(!pool.is_empty(), "empty configuration pool");
    let mut best_id = pool[0];
    let mut best_y = evaluate(best_id);
    for &id in &pool[1..] {
        let y = evaluate(id);
        // NaN-safe: a non-finite incumbent yields to any finite candidate.
        if y.total_cmp(&best_y).is_lt() || (!best_y.is_finite() && y.is_finite()) {
            best_id = id;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: pool.len(),
    }
}

/// Greedy hill climbing over a caller-supplied neighborhood: from `start`,
/// repeatedly evaluate a random neighbor and move when it improves.
pub fn hill_climb(
    start: u128,
    mut neighbor: impl FnMut(u128, &mut StdRng) -> u128,
    mut evaluate: impl FnMut(u128) -> f64,
    n_evals: usize,
    seed: u64,
) -> BaselineResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start;
    let mut cur_y = evaluate(cur);
    let (mut best_id, mut best_y) = (cur, cur_y);
    for _ in 1..n_evals {
        let cand = neighbor(cur, &mut rng);
        let y = evaluate(cand);
        if y < cur_y {
            cur = cand;
            cur_y = y;
        }
        if y < best_y {
            best_id = cand;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals,
    }
}

/// Simulated annealing with a geometric cooling schedule. Acceptance uses
/// the relative degradation `(y - cur) / cur` against the temperature.
pub fn simulated_annealing(
    start: u128,
    mut neighbor: impl FnMut(u128, &mut StdRng) -> u128,
    mut evaluate: impl FnMut(u128) -> f64,
    n_evals: usize,
    initial_temp: f64,
    seed: u64,
) -> BaselineResult {
    assert!(initial_temp > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start;
    let mut cur_y = evaluate(cur);
    let (mut best_id, mut best_y) = (cur, cur_y);
    // Cool to ~1% of the initial temperature over the budget.
    let cooling = (0.01f64).powf(1.0 / n_evals.max(2) as f64);
    let mut temp = initial_temp;
    for _ in 1..n_evals {
        let cand = neighbor(cur, &mut rng);
        let y = evaluate(cand);
        let delta = (y - cur_y) / cur_y.max(1e-30);
        let accept = delta <= 0.0 || rng.gen_range(0.0..1.0f64) < (-delta / temp).exp();
        if accept {
            cur = cand;
            cur_y = y;
        }
        if y < best_y {
            best_id = cand;
            best_y = y;
        }
        temp *= cooling;
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u128) -> f64 {
        ((id as f64) - 321.0).abs()
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let pool: Vec<u128> = (0..1000).collect();
        let res = exhaustive_search(&pool, f);
        assert_eq!(res.best_id, 321);
        assert_eq!(res.best_y, 0.0);
        assert_eq!(res.n_evals, 1000);
    }

    #[test]
    fn random_search_is_deterministic_and_bounded() {
        let pool: Vec<u128> = (0..1000).collect();
        let a = random_search(&pool, f, 50, 7);
        let b = random_search(&pool, f, 50, 7);
        assert_eq!(a.best_id, b.best_id);
        assert_eq!(a.n_evals, 50);
        // Different seeds explore different subsets (almost surely).
        let mut seen7 = Vec::new();
        random_search(
            &pool,
            |id| {
                seen7.push(id);
                f(id)
            },
            50,
            7,
        );
        let mut seen8 = Vec::new();
        random_search(
            &pool,
            |id| {
                seen8.push(id);
                f(id)
            },
            50,
            8,
        );
        assert_ne!(seen7, seen8);
    }

    /// A rugged 1-D landscape with a global optimum at 700.
    fn rugged(id: u128) -> f64 {
        let x = id as f64;
        ((x - 700.0) / 50.0).powi(2) + ((x / 13.0).sin() + 1.0)
    }

    fn step(id: u128, rng: &mut StdRng) -> u128 {
        let d = rng.gen_range(-30i64..=30);
        (id as i64 + d).clamp(0, 999) as u128
    }

    #[test]
    fn hill_climb_descends() {
        let res = hill_climb(100, step, rugged, 200, 3);
        assert!(res.best_y < rugged(100), "must improve on the start");
        assert_eq!(res.n_evals, 200);
    }

    #[test]
    fn annealing_escapes_local_minima_better_than_pure_descent() {
        // Average over seeds: SA should be at least as good as HC on a
        // rugged landscape given the same budget.
        let mut hc_sum = 0.0;
        let mut sa_sum = 0.0;
        for seed in 0..10 {
            hc_sum += hill_climb(100, step, rugged, 300, seed).best_y;
            sa_sum += simulated_annealing(100, step, rugged, 300, 0.5, seed).best_y;
        }
        assert!(sa_sum <= hc_sum * 1.10, "SA {sa_sum} vs HC {hc_sum}");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let a = simulated_annealing(100, step, rugged, 100, 0.5, 9);
        let b = simulated_annealing(100, step, rugged, 100, 0.5, 9);
        assert_eq!(a.best_id, b.best_id);
    }

    #[test]
    fn random_search_caps_at_pool_size() {
        let pool: Vec<u128> = (0..10).collect();
        let res = random_search(&pool, f, 100, 1);
        assert_eq!(res.n_evals, 10);
        assert_eq!(res.best_id, 9); // closest to 321 within 0..10
    }
}
