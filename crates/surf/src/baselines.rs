//! Baseline search strategies: uniform random sampling and brute-force
//! enumeration (the paper contrasts SURF with the earlier brute-force
//! search of [Rivera 2014] and with the 23-day cost of enumerating the full
//! Lg3t space).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of a baseline search.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    pub best_id: u128,
    pub best_y: f64,
    /// Evaluations actually performed — the number of times the search
    /// called `evaluate`, not the budget it was asked for. The two differ
    /// at the edges: a zero budget still costs the mandatory evaluation of
    /// the start point, and `random_search` caps at the pool size.
    pub n_evals: usize,
}

/// Evaluates `n` configurations drawn uniformly without replacement.
pub fn random_search(
    pool: &[u128],
    mut evaluate: impl FnMut(u128) -> f64,
    n: usize,
    seed: u64,
) -> BaselineResult {
    assert!(!pool.is_empty(), "empty configuration pool");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u128> = pool.to_vec();
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    ids.truncate(n.clamp(1, pool.len()));
    let mut best_id = ids[0];
    let mut best_y = evaluate(best_id);
    for &id in &ids[1..] {
        let y = evaluate(id);
        // NaN-safe: a non-finite incumbent yields to any finite candidate.
        if y.total_cmp(&best_y).is_lt() || (!best_y.is_finite() && y.is_finite()) {
            best_id = id;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: ids.len(),
    }
}

/// Evaluates every configuration (only for spaces small enough to afford).
pub fn exhaustive_search(pool: &[u128], mut evaluate: impl FnMut(u128) -> f64) -> BaselineResult {
    assert!(!pool.is_empty(), "empty configuration pool");
    let mut best_id = pool[0];
    let mut best_y = evaluate(best_id);
    for &id in &pool[1..] {
        let y = evaluate(id);
        // NaN-safe: a non-finite incumbent yields to any finite candidate.
        if y.total_cmp(&best_y).is_lt() || (!best_y.is_finite() && y.is_finite()) {
            best_id = id;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: pool.len(),
    }
}

/// Greedy hill climbing over a caller-supplied neighborhood: from `start`,
/// repeatedly evaluate a random neighbor and move when it improves.
pub fn hill_climb(
    start: u128,
    mut neighbor: impl FnMut(u128, &mut StdRng) -> u128,
    mut evaluate: impl FnMut(u128) -> f64,
    n_evals: usize,
    seed: u64,
) -> BaselineResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start;
    let mut cur_y = evaluate(cur);
    let (mut best_id, mut best_y) = (cur, cur_y);
    let mut evals = 1usize; // the mandatory evaluation of `start`
    for _ in 1..n_evals {
        let cand = neighbor(cur, &mut rng);
        let y = evaluate(cand);
        evals += 1;
        if y < cur_y {
            cur = cand;
            cur_y = y;
        }
        if y < best_y {
            best_id = cand;
            best_y = y;
        }
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: evals,
    }
}

/// Simulated annealing with a geometric cooling schedule. Acceptance uses
/// the relative degradation `(y - cur) / cur` against the temperature.
pub fn simulated_annealing(
    start: u128,
    mut neighbor: impl FnMut(u128, &mut StdRng) -> u128,
    mut evaluate: impl FnMut(u128) -> f64,
    n_evals: usize,
    initial_temp: f64,
    seed: u64,
) -> BaselineResult {
    assert!(initial_temp > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = start;
    let mut cur_y = evaluate(cur);
    let (mut best_id, mut best_y) = (cur, cur_y);
    // Cool to ~1% of the initial temperature over the budget.
    let cooling = (0.01f64).powf(1.0 / n_evals.max(2) as f64);
    let mut temp = initial_temp;
    let mut evals = 1usize; // the mandatory evaluation of `start`
    for _ in 1..n_evals {
        let cand = neighbor(cur, &mut rng);
        let y = evaluate(cand);
        evals += 1;
        let delta = (y - cur_y) / cur_y.max(1e-30);
        let accept = delta <= 0.0 || rng.gen_range(0.0..1.0f64) < (-delta / temp).exp();
        if accept {
            cur = cand;
            cur_y = y;
        }
        if y < best_y {
            best_id = cand;
            best_y = y;
        }
        temp *= cooling;
    }
    BaselineResult {
        best_id,
        best_y,
        n_evals: evals,
    }
}

/// Simulated annealing over *contraction orders*: the search state is a
/// mixed-radix version vector — digit `k` selects one of `radices[k]`
/// factorizations (loop orders / contraction trees) for statement `k` —
/// and a neighbor redraws exactly one digit to a different value. Ids
/// encode the vector little-endian (digit 0 is `id % radices[0]`), matching
/// the joint encoding the tuner uses for version choices, so the returned
/// `best_id` can be decoded with the same radices.
///
/// Delegates to [`simulated_annealing`] for the acceptance rule and
/// cooling schedule; determinism per seed is inherited.
pub fn contraction_order_annealing(
    radices: &[usize],
    start: u128,
    evaluate: impl FnMut(u128) -> f64,
    n_evals: usize,
    initial_temp: f64,
    seed: u64,
) -> BaselineResult {
    assert!(!radices.is_empty(), "no statements to order");
    assert!(
        radices.iter().all(|&r| r > 0),
        "every statement needs at least one version"
    );
    let decode = |mut id: u128| -> Vec<usize> {
        radices
            .iter()
            .map(|&r| {
                let d = (id % r as u128) as usize;
                id /= r as u128;
                d
            })
            .collect()
    };
    let encode = |digits: &[usize]| -> u128 {
        digits
            .iter()
            .zip(radices)
            .rev()
            .fold(0u128, |acc, (&d, &r)| acc * r as u128 + d as u128)
    };
    let neighbor = |id: u128, rng: &mut StdRng| -> u128 {
        let mut digits = decode(id);
        // Redraw one digit that has somewhere else to go; a space with
        // only singleton radices has a single point and no neighbors.
        let movable: Vec<usize> = (0..radices.len()).filter(|&k| radices[k] > 1).collect();
        if movable.is_empty() {
            return id;
        }
        let k = movable[rng.gen_range(0..movable.len())];
        let mut v = rng.gen_range(0..radices[k]);
        while v == digits[k] {
            v = rng.gen_range(0..radices[k]);
        }
        digits[k] = v;
        encode(&digits)
    };
    simulated_annealing(start, neighbor, evaluate, n_evals, initial_temp, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u128) -> f64 {
        ((id as f64) - 321.0).abs()
    }

    #[test]
    fn exhaustive_finds_global_optimum() {
        let pool: Vec<u128> = (0..1000).collect();
        let res = exhaustive_search(&pool, f);
        assert_eq!(res.best_id, 321);
        assert_eq!(res.best_y, 0.0);
        assert_eq!(res.n_evals, 1000);
    }

    #[test]
    fn random_search_is_deterministic_and_bounded() {
        let pool: Vec<u128> = (0..1000).collect();
        let a = random_search(&pool, f, 50, 7);
        let b = random_search(&pool, f, 50, 7);
        assert_eq!(a.best_id, b.best_id);
        assert_eq!(a.n_evals, 50);
        // Different seeds explore different subsets (almost surely).
        let mut seen7 = Vec::new();
        random_search(
            &pool,
            |id| {
                seen7.push(id);
                f(id)
            },
            50,
            7,
        );
        let mut seen8 = Vec::new();
        random_search(
            &pool,
            |id| {
                seen8.push(id);
                f(id)
            },
            50,
            8,
        );
        assert_ne!(seen7, seen8);
    }

    /// A rugged 1-D landscape with a global optimum at 700.
    fn rugged(id: u128) -> f64 {
        let x = id as f64;
        ((x - 700.0) / 50.0).powi(2) + ((x / 13.0).sin() + 1.0)
    }

    fn step(id: u128, rng: &mut StdRng) -> u128 {
        let d = rng.gen_range(-30i64..=30);
        (id as i64 + d).clamp(0, 999) as u128
    }

    #[test]
    fn hill_climb_descends() {
        let res = hill_climb(100, step, rugged, 200, 3);
        assert!(res.best_y < rugged(100), "must improve on the start");
        assert_eq!(res.n_evals, 200);
    }

    #[test]
    fn annealing_escapes_local_minima_better_than_pure_descent() {
        // Average over seeds: SA should be at least as good as HC on a
        // rugged landscape given the same budget.
        let mut hc_sum = 0.0;
        let mut sa_sum = 0.0;
        for seed in 0..10 {
            hc_sum += hill_climb(100, step, rugged, 300, seed).best_y;
            sa_sum += simulated_annealing(100, step, rugged, 300, 0.5, seed).best_y;
        }
        assert!(sa_sum <= hc_sum * 1.10, "SA {sa_sum} vs HC {hc_sum}");
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let a = simulated_annealing(100, step, rugged, 100, 0.5, 9);
        let b = simulated_annealing(100, step, rugged, 100, 0.5, 9);
        assert_eq!(a.best_id, b.best_id);
    }

    #[test]
    fn n_evals_counts_evaluations_actually_performed() {
        // The result must report how many times `evaluate` ran, not the
        // requested budget — including the zero-budget edge, where the
        // start point is still evaluated once.
        for budget in [0usize, 1, 2, 17] {
            let mut hc_calls = 0usize;
            let hc = hill_climb(
                100,
                step,
                |id| {
                    hc_calls += 1;
                    rugged(id)
                },
                budget,
                5,
            );
            assert_eq!(hc.n_evals, hc_calls, "hill_climb budget {budget}");
            assert_eq!(hc_calls, budget.max(1));
            let mut sa_calls = 0usize;
            let sa = simulated_annealing(
                100,
                step,
                |id| {
                    sa_calls += 1;
                    rugged(id)
                },
                budget,
                0.5,
                5,
            );
            assert_eq!(sa.n_evals, sa_calls, "annealing budget {budget}");
            assert_eq!(sa_calls, budget.max(1));
        }
    }

    /// Joint landscape over three statements with 4, 1 and 6 versions:
    /// best at digits (2, 0, 5).
    fn order_cost(id: u128) -> f64 {
        let d0 = (id % 4) as f64;
        let d2 = (id / 4 % 6) as f64;
        (d0 - 2.0).abs() * 3.0 + (d2 - 5.0).abs() + 1.0
    }

    #[test]
    fn contraction_order_annealing_finds_the_best_order() {
        let res = contraction_order_annealing(&[4, 1, 6], 0, order_cost, 200, 0.5, 11);
        assert_eq!(res.best_id % 4, 2);
        assert_eq!(res.best_id / 4 % 6, 5);
        assert_eq!(res.best_y, 1.0);
        assert_eq!(res.n_evals, 200);
    }

    #[test]
    fn contraction_order_annealing_stays_inside_the_mixed_radix_space() {
        let radices = [4usize, 1, 6];
        let space: u128 = radices.iter().map(|&r| r as u128).product();
        contraction_order_annealing(
            &radices,
            0,
            |id| {
                // Every candidate decodes to in-range digits.
                assert!(id < space, "id {id} outside the {space}-point space");
                order_cost(id)
            },
            100,
            0.5,
            3,
        );
    }

    #[test]
    fn contraction_order_annealing_is_deterministic_per_seed() {
        let a = contraction_order_annealing(&[4, 1, 6], 0, order_cost, 100, 0.5, 9);
        let b = contraction_order_annealing(&[4, 1, 6], 0, order_cost, 100, 0.5, 9);
        assert_eq!(a.best_id, b.best_id);
        assert_eq!(a.best_y.to_bits(), b.best_y.to_bits());
    }

    #[test]
    fn singleton_space_annealing_stays_put() {
        // Every radix is 1: the single point is the answer and the
        // neighbor function must not loop forever looking for another.
        let res = contraction_order_annealing(&[1, 1], 0, |_| 42.0, 10, 0.5, 1);
        assert_eq!(res.best_id, 0);
        assert_eq!(res.best_y, 42.0);
    }

    #[test]
    fn random_search_caps_at_pool_size() {
        let pool: Vec<u128> = (0..10).collect();
        let res = random_search(&pool, f, 100, 1);
        assert_eq!(res.n_evals, 10);
        assert_eq!(res.best_id, 9); // closest to 321 within 0..10
    }
}
