//! Parser robustness properties: `parse_program` must be total — any input,
//! however hostile, yields `Ok` or a located `ParseError`, never a panic.

use octopi::{parse_program, ParseError};
use proptest::prelude::*;

/// Characters the generator draws from: everything the DSL uses, plus junk
/// that exercises the lexer's reject paths (unbalanced brackets, stray
/// operators, unicode).
const CHARSET: &[char] = &[
    'A', 'B', 'C', 'X', 'Y', 'a', 'b', 'c', 'i', 'j', 'k', 'S', 'u', 'm', '0', '1', '9', '[', ']',
    '(', ')', '=', '*', '+', '-', ',', ' ', '\n', '\t', '_', '.', ';', '%', 'é', '∑',
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARSET.len(), 0..80)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARSET[i]).collect())
}

/// A small pool of valid programs to truncate and mutate.
const VALID: &[&str] = &[
    "W[a c] = Sum([b], X[a b] * Y[b c])",
    "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
    "T[i] = Sum([j], A[i j] * x[j])\nS[i] += Sum([k], B[i k] * y[k])",
    "R[a] = Sum([b], P[a b] * Q[b a])",
];

/// Errors must locate themselves inside (or at the end of) the input and
/// carry a non-empty message.
fn check_error_is_located(src: &str, e: &ParseError) {
    assert!(
        e.offset <= src.len(),
        "offset {} beyond input length {}",
        e.offset,
        src.len()
    );
    assert!(!e.message.is_empty(), "empty parse error message");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary character soup never panics the parser.
    #[test]
    fn arbitrary_input_never_panics(src in soup()) {
        if let Err(e) = parse_program(&src) {
            check_error_is_located(&src, &e);
        }
    }

    /// Every prefix of a valid program parses or fails cleanly — the
    /// parser never reads past a truncation point.
    #[test]
    fn truncated_programs_never_panic(which in 0usize..4, cut in 0usize..120) {
        let full = VALID[which];
        let cut = cut.min(full.len());
        // Snap to a char boundary (the pool is ASCII, but keep it robust).
        let mut cut = cut;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        let src = &full[..cut];
        if let Err(e) = parse_program(src) {
            check_error_is_located(src, &e);
        }
    }

    /// Single-character corruption of a valid program parses or fails
    /// cleanly, never panics.
    #[test]
    fn mutated_programs_never_panic(
        which in 0usize..4,
        pos in 0usize..120,
        sub in 0usize..CHARSET.len(),
    ) {
        let full = VALID[which];
        let pos = pos % full.len();
        let Some((start, c)) = full.char_indices().nth(pos.min(full.chars().count() - 1)) else {
            return Ok(());
        };
        let mut src = String::with_capacity(full.len() + 4);
        src.push_str(&full[..start]);
        src.push(CHARSET[sub]);
        src.push_str(&full[start + c.len_utf8()..]);
        if let Err(e) = parse_program(&src) {
            check_error_is_located(&src, &e);
        }
    }

    /// Valid programs keep parsing (the generator pool really is valid),
    /// and re-parsing the pretty-printed form gives the same AST.
    #[test]
    fn valid_pool_round_trips(which in 0usize..4) {
        let prog = parse_program(VALID[which]).unwrap();
        prop_assert!(!prog.statements.is_empty());
        let printed = prog
            .statements
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(&reparsed.statements, &prog.statements);
    }
}
