//! Operation-count and memory-footprint analysis of contraction versions.

use crate::ast::Contraction;
use crate::factorize::{Factorization, Operand};
use tensor::IndexMap;

/// Cost summary of a single factorization under a given extent map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostSummary {
    /// Floating-point operations executed by the factorized program.
    pub flops: u64,
    /// Elements of intermediate temporary storage.
    pub temp_elems: u64,
    /// Number of generated statements (kernels).
    pub num_steps: usize,
    /// Elements read from the original inputs (each input term counted once
    /// per consuming step).
    pub input_reads: u64,
}

/// Computes the naive (single loop nest) operation count of a statement:
/// the full joint iteration space with one multiply per extra term and one
/// add, matching §III's `O(p^6)` example.
pub fn naive_flops(c: &Contraction, dims: &IndexMap) -> u64 {
    let joint: u64 = c.all_indices().iter().map(|ix| dims[ix] as u64).product();
    joint * c.terms.len() as u64
}

/// Summarizes the cost of a factorization.
pub fn summarize(c: &Contraction, dims: &IndexMap, f: &Factorization) -> CostSummary {
    let input_reads = f
        .steps
        .iter()
        .flat_map(|s| s.operands.iter())
        .filter_map(|op| match op {
            Operand::Input(k) => Some(
                c.terms[*k]
                    .indices
                    .iter()
                    .map(|ix| dims[ix] as u64)
                    .product::<u64>(),
            ),
            Operand::Temp(_) => None,
        })
        .sum();
    CostSummary {
        flops: f.flops,
        temp_elems: f.temp_elems,
        num_steps: f.steps.len(),
        input_reads,
    }
}

/// Strength-reduction gain: naive flops divided by the factorization's
/// flops. Values > 1 mean the algebraic transformation reduced computation.
pub fn strength_reduction_gain(c: &Contraction, dims: &IndexMap, f: &Factorization) -> f64 {
    naive_flops(c, dims) as f64 / f.flops as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TensorRef;
    use crate::factorize::enumerate_factorizations;
    use tensor::index::uniform_dims;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn naive_flops_is_n6() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        assert_eq!(naive_flops(&eqn1(), &dims), 4 * 10u64.pow(6));
    }

    #[test]
    fn best_version_gains_two_orders() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        let gain = strength_reduction_gain(&eqn1(), &dims, &fs[0]);
        // O(N^6) -> O(N^4): gain ~ N^2 * 4/6
        assert!(gain > 50.0, "gain = {gain}");
    }

    #[test]
    fn summary_counts_steps_and_temps() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        let s = summarize(&eqn1(), &dims, &fs[0]);
        assert_eq!(s.num_steps, 3);
        assert_eq!(s.temp_elems, 2 * 10u64.pow(3));
        assert!(s.input_reads >= 100 * 3 + 1000);
    }
}
