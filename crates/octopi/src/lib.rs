//! OCTOPI — Optimizing Compiler with Tensor OPeration Intelligence.
//!
//! The frontend of the Barracuda pipeline (paper §III). It accepts summation
//! statements in a notation close to the paper's input language:
//!
//! ```text
//! V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])
//! ```
//!
//! and applies *tensor-level* algebraic transformations:
//!
//! - **Strength reduction** (Algorithm 1 of the paper): enumerate all
//!   factorizations of an n-ary contraction into binary contractions with
//!   temporaries, exploiting commutativity/associativity and early summation
//!   of indices local to a single term. For the paper's Eqn. (1) this yields
//!   exactly 15 distinct versions, 6 of which share the minimal operation
//!   count ([`factorize::enumerate_factorizations`]).
//! - **Fusion analysis** ([`fusion`]): which adjacent produced statements can
//!   share loops, reducing temporary traffic.
//! - **Cost analysis** ([`cost`]): floating-point operation counts and
//!   temporary-memory footprints per version.
//!
//! Each surviving version is handed to the TCR crate as a sequence of binary
//! contraction statements.

pub mod ast;
pub mod cost;
pub mod cse;
pub mod factorize;
pub mod fusion;
pub mod parser;

pub use ast::{Contraction, Program, TensorRef};
pub use cse::{analyze_cse, CseReport};
pub use factorize::{enumerate_factorizations, Factorization, Operand, Step};
pub use parser::{parse_program, ParseError};
