//! Cross-statement common-subexpression analysis.
//!
//! The TCE line of work the paper builds on identifies "cost-effective
//! common subexpressions to reduce operation count" (Hartono et al., ICCS
//! 2006 — reference [13] of the paper). This module finds factorization
//! steps in *different statements* of a workload that compute the same
//! tensor (same input operands with the same index binding, same summation
//! set) — the second occurrence can reuse the first's temporary instead of
//! recomputing it.

use crate::ast::Contraction;
use crate::factorize::{Factorization, Operand};
use tensor::IndexMap;

/// Canonical identity of a step's computation (only steps whose operands
/// are original input tensors can match across statements).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StepKey {
    /// Sorted operand signatures: `(tensor name, index names)`.
    operands: Vec<(String, Vec<String>)>,
    /// Sorted summed index names.
    summed: Vec<String>,
    /// Sorted produced index names.
    produced: Vec<String>,
}

fn step_key(
    contraction: &Contraction,
    factorization: &Factorization,
    step: usize,
) -> Option<StepKey> {
    let st = &factorization.steps[step];
    let mut operands = Vec::with_capacity(st.operands.len());
    for op in &st.operands {
        match op {
            Operand::Input(k) => {
                let t = &contraction.terms[*k];
                operands.push((
                    t.name.clone(),
                    t.indices.iter().map(|i| i.name().to_string()).collect(),
                ));
            }
            // Steps consuming earlier temporaries are statement-local.
            Operand::Temp(_) => return None,
        }
    }
    operands.sort();
    let mut summed: Vec<String> = st.sum_over.iter().map(|i| i.name().to_string()).collect();
    summed.sort();
    let mut produced: Vec<String> = st.indices.iter().map(|i| i.name().to_string()).collect();
    produced.sort();
    Some(StepKey {
        operands,
        summed,
        produced,
    })
}

/// One reuse opportunity: statement `later` step `later_step` recomputes
/// what statement `earlier` step `earlier_step` already produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CseMatch {
    pub earlier: usize,
    pub earlier_step: usize,
    pub later: usize,
    pub later_step: usize,
    /// Flops the later statement saves by reusing the temporary.
    pub flops_saved: u64,
}

/// CSE report for a whole workload.
#[derive(Clone, Debug, Default)]
pub struct CseReport {
    pub matches: Vec<CseMatch>,
    pub flops_total: u64,
    pub flops_saved: u64,
}

impl CseReport {
    /// Fraction of total work eliminated by reuse.
    pub fn savings(&self) -> f64 {
        if self.flops_total == 0 {
            return 0.0;
        }
        self.flops_saved as f64 / self.flops_total as f64
    }
}

/// Step flops under `dims` (mirrors the enumerator's accounting).
fn step_flops(f: &Factorization, step: usize, dims: &IndexMap) -> u64 {
    let st = &f.steps[step];
    let space: u64 = st
        .indices
        .iter()
        .chain(st.sum_over.iter())
        .map(|ix| dims[ix] as u64)
        .product();
    space * if st.operands.len() == 2 { 2 } else { 1 }
}

/// Analyzes the chosen factorization of every statement for reuse across
/// statements (first occurrence wins; each later duplicate is counted once).
pub fn analyze_cse(chosen: &[(&Contraction, &Factorization)], dims: &IndexMap) -> CseReport {
    let mut seen: Vec<(StepKey, usize, usize)> = Vec::new();
    let mut report = CseReport::default();
    for (si, (c, f)) in chosen.iter().enumerate() {
        report.flops_total += f.flops;
        for step in 0..f.steps.len() {
            let Some(key) = step_key(c, f, step) else {
                continue;
            };
            if let Some((_, ei, es)) = seen.iter().find(|(k, ei, _)| *k == key && *ei != si) {
                let saved = step_flops(f, step, dims);
                report.flops_saved += saved;
                report.matches.push(CseMatch {
                    earlier: *ei,
                    earlier_step: *es,
                    later: si,
                    later_step: step,
                    flops_saved: saved,
                });
            } else {
                seen.push((key, si, step));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TensorRef;
    use crate::factorize::enumerate_factorizations;
    use tensor::index::uniform_dims;

    fn stmt(out: &str, out_idx: &[&str], sums: &[&str], terms: &[(&str, &[&str])]) -> Contraction {
        Contraction {
            output: TensorRef::new(out, out_idx),
            sum_indices: sums.iter().map(|s| (*s).into()).collect(),
            terms: terms.iter().map(|(n, ix)| TensorRef::new(*n, ix)).collect(),
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn shared_subcontraction_detected() {
        // Both statements start by contracting C[n i] * U[l m n] over n.
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 6);
        let s1 = stmt(
            "V",
            &["i", "j", "k"],
            &["l", "m", "n"],
            &[
                ("A", &["l", "k"]),
                ("B", &["m", "j"]),
                ("C", &["n", "i"]),
                ("U", &["l", "m", "n"]),
            ],
        );
        let s2 = stmt(
            "W",
            &["i", "j", "k"],
            &["l", "m", "n"],
            &[
                ("A2", &["l", "k"]),
                ("B2", &["m", "j"]),
                ("C", &["n", "i"]),
                ("U", &["l", "m", "n"]),
            ],
        );
        let f1 = enumerate_factorizations(&s1, &dims);
        let f2 = enumerate_factorizations(&s2, &dims);
        // Pick versions whose first step is C x U for both (the minimal
        // versions start with an N^4 pair; find one explicitly).
        let pick = |c: &Contraction, fs: &[Factorization]| -> Factorization {
            fs.iter()
                .find(|f| step_key(c, f, 0).is_some_and(|k| k.operands[0].0 == "C"))
                .expect("a version starting with C x U exists")
                .clone()
        };
        let p1 = pick(&s1, &f1);
        let p2 = pick(&s2, &f2);
        let report = analyze_cse(&[(&s1, &p1), (&s2, &p2)], &dims);
        assert_eq!(report.matches.len(), 1, "{report:?}");
        assert!(report.flops_saved > 0);
        assert!(report.savings() > 0.1, "savings {}", report.savings());
        let m = &report.matches[0];
        assert_eq!(m.earlier, 0);
        assert_eq!(m.later, 1);
    }

    #[test]
    fn different_index_bindings_do_not_match() {
        // lg3's three statements all multiply D by u but with different
        // index bindings — no reuse is possible.
        let mut dims = uniform_dims(&["i", "j", "k", "l"], 4);
        dims.insert("e".into(), 3);
        let s1 = stmt(
            "ur",
            &["e", "i", "j", "k"],
            &["l"],
            &[("D", &["i", "l"]), ("u", &["e", "l", "j", "k"])],
        );
        let s2 = stmt(
            "us",
            &["e", "i", "j", "k"],
            &["l"],
            &[("D", &["j", "l"]), ("u", &["e", "i", "l", "k"])],
        );
        let f1 = enumerate_factorizations(&s1, &dims);
        let f2 = enumerate_factorizations(&s2, &dims);
        let report = analyze_cse(&[(&s1, &f1[0]), (&s2, &f2[0])], &dims);
        assert!(report.matches.is_empty());
        assert_eq!(report.flops_saved, 0);
    }

    #[test]
    fn identical_statements_fully_shared_first_step() {
        let dims = uniform_dims(&["i", "j", "k"], 8);
        let s = stmt(
            "C",
            &["i", "k"],
            &["j"],
            &[("A", &["i", "j"]), ("B", &["j", "k"])],
        );
        let f = enumerate_factorizations(&s, &dims);
        let report = analyze_cse(&[(&s, &f[0]), (&s, &f[0])], &dims);
        assert_eq!(report.matches.len(), 1);
        // The whole second statement is one step, so savings = half.
        assert!((report.savings() - 0.5).abs() < 1e-12);
    }
}
