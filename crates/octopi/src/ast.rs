//! Abstract syntax for OCTOPI summation statements.

use std::collections::BTreeSet;
use std::fmt;
use tensor::{EinsumSpec, IndexMap, IndexVar};

/// A named tensor with symbolic indices, e.g. `A[l k]`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TensorRef {
    pub name: String,
    pub indices: Vec<IndexVar>,
}

impl TensorRef {
    pub fn new(name: impl Into<String>, indices: &[&str]) -> Self {
        TensorRef {
            name: name.into(),
            indices: indices.iter().map(|s| IndexVar::new(*s)).collect(),
        }
    }

    /// The set of indices of this reference (order-insensitive view).
    pub fn index_set(&self) -> BTreeSet<IndexVar> {
        self.indices.iter().cloned().collect()
    }
}

impl fmt::Debug for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idx: Vec<&str> = self.indices.iter().map(|i| i.name()).collect();
        write!(f, "{}[{}]", self.name, idx.join(" "))
    }
}

/// One summation statement: `output [+]= Sum([sum_indices], t0 * t1 * ...)`.
///
/// The statement is valid when every summation index occurs in some term, no
/// summation index occurs in the output, and every index has an extent.
#[derive(Clone, Debug, PartialEq)]
pub struct Contraction {
    pub output: TensorRef,
    pub sum_indices: Vec<IndexVar>,
    pub terms: Vec<TensorRef>,
    /// True when the statement accumulates (`+=`/`-=`) into an existing
    /// output.
    pub accumulate: bool,
    /// Scalar multiplier of the right-hand side (`-=` sets -1; an explicit
    /// `2.5 *` prefix sets 2.5). The CCSD(T) kernels carry such signs.
    pub coefficient: f64,
}

impl Contraction {
    /// Checks internal consistency against an extent map; returns a
    /// description of the first problem found.
    pub fn validate(&self, dims: &IndexMap) -> Result<(), String> {
        if self.terms.is_empty() {
            return Err(format!("{}: statement has no terms", self.output.name));
        }
        for ix in self
            .output
            .indices
            .iter()
            .chain(self.sum_indices.iter())
            .chain(self.terms.iter().flat_map(|t| t.indices.iter()))
        {
            if !dims.contains_key(ix) {
                return Err(format!("index {ix} has no extent"));
            }
        }
        for s in &self.sum_indices {
            if self.output.indices.contains(s) {
                return Err(format!("summation index {s} appears in the output"));
            }
            if !self.terms.iter().any(|t| t.indices.contains(s)) {
                return Err(format!("summation index {s} appears in no term"));
            }
        }
        for t in &self.terms {
            for ix in &t.indices {
                if !self.output.indices.contains(ix) && !self.sum_indices.contains(ix) {
                    return Err(format!(
                        "index {ix} of term {} is neither an output nor a summation index",
                        t.name
                    ));
                }
            }
        }
        Ok(())
    }

    /// All distinct index variables of the statement, lexicographic.
    pub fn all_indices(&self) -> BTreeSet<IndexVar> {
        let mut s: BTreeSet<IndexVar> = self.output.indices.iter().cloned().collect();
        for t in &self.terms {
            s.extend(t.indices.iter().cloned());
        }
        s
    }

    /// Converts this statement into a reference-evaluator spec.
    pub fn to_einsum(&self, dims: &IndexMap) -> EinsumSpec {
        let mut sub: IndexMap = IndexMap::new();
        for ix in self.all_indices() {
            sub.insert(ix.clone(), dims[&ix]);
        }
        EinsumSpec {
            inputs: self.terms.iter().map(|t| t.indices.clone()).collect(),
            output: self.output.indices.clone(),
            dims: sub,
        }
    }
}

impl fmt::Display for Contraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.accumulate && self.coefficient == -1.0 {
            "-="
        } else if self.accumulate {
            "+="
        } else {
            "="
        };
        let mut terms: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        if self.coefficient != 1.0 && !(self.accumulate && self.coefficient == -1.0) {
            terms.insert(0, format!("{}", self.coefficient));
        }
        if self.sum_indices.is_empty() {
            write!(f, "{} {} {}", self.output, op, terms.join(" * "))
        } else {
            let sums: Vec<&str> = self.sum_indices.iter().map(|i| i.name()).collect();
            write!(
                f,
                "{} {} Sum([{}], {})",
                self.output,
                op,
                sums.join(" "),
                terms.join(" * ")
            )
        }
    }
}

/// A parsed OCTOPI input: statements plus (optional) declared extents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub statements: Vec<Contraction>,
    /// Extents declared in the source with `dims { i = 10 ... }`; callers may
    /// extend or override these before lowering.
    pub dims: IndexMap,
}

impl Program {
    /// Validates every statement against `dims`.
    pub fn validate(&self, dims: &IndexMap) -> Result<(), String> {
        for st in &self.statements {
            st.validate(dims)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn validate_ok() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        assert!(eqn1().validate(&dims).is_ok());
    }

    #[test]
    fn validate_missing_extent() {
        let dims = uniform_dims(&["i", "j", "k"], 10);
        let err = eqn1().validate(&dims).unwrap_err();
        assert!(err.contains("no extent"));
    }

    #[test]
    fn validate_sum_index_in_output() {
        let mut c = eqn1();
        c.sum_indices.push("i".into());
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        assert!(c
            .validate(&dims)
            .unwrap_err()
            .contains("appears in the output"));
    }

    #[test]
    fn validate_unbound_term_index() {
        let mut c = eqn1();
        c.terms.push(TensorRef::new("X", &["q"]));
        let mut dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        dims.insert("q".into(), 10);
        assert!(c
            .validate(&dims)
            .unwrap_err()
            .contains("neither an output nor a summation index"));
    }

    #[test]
    fn to_einsum_round_trip() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 3);
        let spec = eqn1().to_einsum(&dims);
        assert_eq!(spec.inputs.len(), 4);
        assert_eq!(spec.output.len(), 3);
        assert_eq!(spec.summation_indices().len(), 3);
    }

    #[test]
    fn display_round_readable() {
        let s = eqn1().to_string();
        assert_eq!(
            s,
            "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])"
        );
    }
}
