//! Strength reduction: Algorithm 1 of the paper.
//!
//! Enumerates every algebraic factorization of an n-ary contraction into a
//! sequence of unary reductions and binary contractions over temporaries,
//! exploiting commutativity and associativity. Indices that occur in only a
//! single live term are summed as early as possible; every pair choice is
//! explored by depth-first search; structurally identical trees (up to
//! operand commutativity and interleaving of independent combines) are
//! de-duplicated, so the paper's Eqn. (1) yields exactly 15 versions.

use crate::ast::Contraction;
use std::collections::{BTreeMap, BTreeSet};
use tensor::{EinsumSpec, IndexMap, IndexVar, Tensor};

/// Reference to a step operand: an original input term or a prior step's
/// temporary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// `Input(k)` is the k-th term of the original statement.
    Input(usize),
    /// `Temp(j)` is the tensor produced by `steps[j]`.
    Temp(usize),
}

/// One statement of a factorized program:
/// `name[indices] += operand0 (* operand1), summing sum_over`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    pub name: String,
    /// Layout (index order) of the produced tensor.
    pub indices: Vec<IndexVar>,
    /// One operand for a unary reduction, two for a binary contraction.
    pub operands: Vec<Operand>,
    /// Indices summed away by this step.
    pub sum_over: Vec<IndexVar>,
}

/// A complete factorization of one [`Contraction`] into binary steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Factorization {
    pub steps: Vec<Step>,
    /// Total floating-point operations under `dims` (2 per point for binary
    /// steps, 1 per point for unary reductions).
    pub flops: u64,
    /// Total elements of intermediate temporaries (excludes the output).
    pub temp_elems: u64,
    /// Canonical structural key used for de-duplication.
    pub key: String,
}

/// A live term during enumeration.
#[derive(Clone, Debug)]
struct Term {
    op: Operand,
    indices: BTreeSet<IndexVar>,
    /// Layout order of the term (for inputs: declared order; for temps: the
    /// order chosen when the step was created).
    order: Vec<IndexVar>,
    /// Canonical structural key of the subtree that produced this term.
    key: String,
}

struct Enumerator<'a> {
    contraction: &'a Contraction,
    dims: &'a IndexMap,
    output_set: BTreeSet<IndexVar>,
    results: BTreeMap<String, Factorization>,
    /// Safety valve against combinatorial blowup on very wide products.
    max_results: usize,
}

impl<'a> Enumerator<'a> {
    fn extent_product<'b>(&self, indices: impl IntoIterator<Item = &'b IndexVar>) -> u64 {
        indices.into_iter().map(|ix| self.dims[ix] as u64).product()
    }

    /// Indices of `term` that may be summed now: summation indices that occur
    /// in no *other* live term.
    fn reducible(&self, terms: &[Term], which: usize) -> Vec<IndexVar> {
        terms[which]
            .indices
            .iter()
            .filter(|ix| {
                !self.output_set.contains(*ix)
                    && terms
                        .iter()
                        .enumerate()
                        .all(|(j, t)| j == which || !t.indices.contains(*ix))
            })
            .cloned()
            .collect()
    }

    /// Applies all available unary reductions (Algorithm 1 lines 5–9),
    /// mutating `terms`/`steps` in place. Deterministic: scans terms in
    /// order, repeats to fixpoint.
    fn apply_unary_reductions(&self, terms: &mut [Term], steps: &mut Vec<Step>) {
        loop {
            let mut changed = false;
            for which in 0..terms.len() {
                // A single remaining term keeps its reducible indices for the
                // final step so the factorization always ends with the
                // statement that writes the declared output.
                if terms.len() == 1 {
                    return;
                }
                let red = self.reducible(terms, which);
                if red.is_empty() {
                    continue;
                }
                let term = &terms[which];
                let kept: Vec<IndexVar> = term
                    .order
                    .iter()
                    .filter(|ix| !red.contains(ix))
                    .cloned()
                    .collect();
                let step_id = steps.len();
                let key = format!("R({};{:?})", term.key, red);
                steps.push(Step {
                    name: format!("t{}", step_id + 1),
                    indices: kept.clone(),
                    operands: vec![term.op],
                    sum_over: red,
                });
                terms[which] = Term {
                    op: Operand::Temp(step_id),
                    indices: kept.iter().cloned().collect(),
                    order: kept,
                    key,
                };
                changed = true;
            }
            if !changed {
                return;
            }
        }
    }

    /// Layout for a fresh temporary: operand-order indices of the left
    /// operand followed by new indices of the right, minus summed indices.
    fn temp_layout(a: &Term, b: &Term, summed: &[IndexVar]) -> Vec<IndexVar> {
        let mut order: Vec<IndexVar> = Vec::new();
        for ix in a.order.iter().chain(b.order.iter()) {
            if !summed.contains(ix) && !order.contains(ix) {
                order.push(ix.clone());
            }
        }
        order
    }

    fn recurse(&mut self, terms: Vec<Term>, steps: Vec<Step>) {
        if self.results.len() >= self.max_results {
            return;
        }
        if terms.len() == 1 {
            let Some(last) = terms.into_iter().next() else {
                return;
            };
            self.finish(last, steps);
            return;
        }
        // Depth-first over every unordered pair (Algorithm 1 lines 10–14).
        for a in 0..terms.len() {
            for b in (a + 1)..terms.len() {
                let mut terms2 = terms.clone();
                let mut steps2 = steps.clone();
                let tb = terms2.remove(b);
                let ta = terms2.remove(a);

                let union: BTreeSet<IndexVar> = ta.indices.union(&tb.indices).cloned().collect();
                // Sum away indices now exclusive to the merged term.
                let summed: Vec<IndexVar> = union
                    .iter()
                    .filter(|ix| {
                        !self.output_set.contains(*ix)
                            && terms2.iter().all(|t| !t.indices.contains(*ix))
                    })
                    .cloned()
                    .collect();
                let is_final = terms2.is_empty();
                let layout = if is_final {
                    self.contraction.output.indices.clone()
                } else {
                    Self::temp_layout(&ta, &tb, &summed)
                };
                let kept: BTreeSet<IndexVar> = layout.iter().cloned().collect();
                // Commutative canonical key.
                let (ka, kb) = if ta.key <= tb.key {
                    (&ta.key, &tb.key)
                } else {
                    (&tb.key, &ta.key)
                };
                let key = format!("C({ka},{kb})");
                let step_id = steps2.len();
                steps2.push(Step {
                    name: if is_final {
                        self.contraction.output.name.clone()
                    } else {
                        format!("t{}", step_id + 1)
                    },
                    indices: layout.clone(),
                    operands: vec![ta.op, tb.op],
                    sum_over: summed,
                });
                terms2.push(Term {
                    op: Operand::Temp(step_id),
                    indices: kept,
                    order: layout,
                    key,
                });
                self.apply_unary_reductions(&mut terms2, &mut steps2);
                self.recurse(terms2, steps2);
            }
        }
    }

    fn finish(&mut self, last: Term, mut steps: Vec<Step>) {
        debug_assert_eq!(
            last.indices, self.output_set,
            "final term does not match output indices"
        );
        // Ensure the final step is named after, and laid out as, the output.
        if let Operand::Temp(j) = last.op {
            steps[j].name = self.contraction.output.name.clone();
            steps[j].indices = self.contraction.output.indices.clone();
        }
        let key = last.key;
        if self.results.contains_key(&key) {
            return;
        }
        let flops = steps
            .iter()
            .map(|s| {
                let mut joint: BTreeSet<&IndexVar> = s.indices.iter().collect();
                joint.extend(s.sum_over.iter());
                let space = self.extent_product(joint);
                let ops_per_point = if s.operands.len() == 2 { 2 } else { 1 };
                space * ops_per_point
            })
            .sum();
        let temp_elems = steps
            .iter()
            .take(steps.len().saturating_sub(1))
            .map(|s| self.extent_product(s.indices.iter()))
            .sum();
        self.results.insert(
            key.clone(),
            Factorization {
                steps,
                flops,
                temp_elems,
                key,
            },
        );
    }
}

/// Enumerates all distinct factorizations of `contraction` under `dims`,
/// sorted by ascending operation count (ties broken by canonical key, so the
/// order is fully deterministic).
pub fn enumerate_factorizations(contraction: &Contraction, dims: &IndexMap) -> Vec<Factorization> {
    contraction
        .validate(dims)
        .unwrap_or_else(|e| panic!("invalid contraction: {e}"));
    assert!(
        contraction.terms.len() <= 7,
        "refusing to enumerate factorizations of {} terms (exponential)",
        contraction.terms.len()
    );

    let mut en = Enumerator {
        contraction,
        dims,
        output_set: contraction.output.indices.iter().cloned().collect(),
        results: BTreeMap::new(),
        max_results: 100_000,
    };

    let mut terms: Vec<Term> = contraction
        .terms
        .iter()
        .enumerate()
        .map(|(k, t)| Term {
            op: Operand::Input(k),
            indices: t.index_set(),
            order: t.indices.clone(),
            key: format!("L{k}"),
        })
        .collect();
    let mut steps = Vec::new();

    if terms.len() == 1 {
        // Single-term statement: one unary reduction (or copy).
        let t = terms.remove(0);
        let summed: Vec<IndexVar> = t
            .indices
            .iter()
            .filter(|ix| !en.output_set.contains(*ix))
            .cloned()
            .collect();
        steps.push(Step {
            name: contraction.output.name.clone(),
            indices: contraction.output.indices.clone(),
            operands: vec![t.op],
            sum_over: summed,
        });
        let all = contraction.all_indices();
        let f = Factorization {
            flops: en.extent_product(all.iter()),
            temp_elems: 0,
            key: format!("R({})", t.key),
            steps,
        };
        return vec![f];
    }

    en.apply_unary_reductions(&mut terms, &mut steps);
    en.recurse(terms, steps);

    let mut out: Vec<Factorization> = en.results.into_values().collect();
    out.sort_by(|a, b| a.flops.cmp(&b.flops).then_with(|| a.key.cmp(&b.key)));
    out
}

impl Factorization {
    /// Executes the factorized program step by step with the reference
    /// einsum evaluator. Used to validate that every factorization computes
    /// exactly the original statement.
    pub fn evaluate(
        &self,
        contraction: &Contraction,
        dims: &IndexMap,
        inputs: &[&Tensor],
    ) -> Tensor {
        assert_eq!(inputs.len(), contraction.terms.len());
        let mut temps: Vec<Tensor> = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            let operand_labels: Vec<Vec<IndexVar>> = step
                .operands
                .iter()
                .map(|op| match op {
                    Operand::Input(k) => contraction.terms[*k].indices.clone(),
                    Operand::Temp(j) => self.steps[*j].indices.clone(),
                })
                .collect();
            let spec = EinsumSpec {
                inputs: operand_labels,
                output: step.indices.clone(),
                dims: {
                    let mut sub = IndexMap::new();
                    for ix in step.indices.iter().chain(step.sum_over.iter()) {
                        sub.insert(ix.clone(), dims[ix]);
                    }
                    // Operand indices may include summed ones already covered.
                    for op in &step.operands {
                        let labels = match op {
                            Operand::Input(k) => &contraction.terms[*k].indices,
                            Operand::Temp(j) => &self.steps[*j].indices,
                        };
                        for ix in labels {
                            sub.insert(ix.clone(), dims[ix]);
                        }
                    }
                    sub
                },
            };
            let operand_tensors: Vec<&Tensor> = step
                .operands
                .iter()
                .map(|op| match op {
                    Operand::Input(k) => inputs[*k],
                    Operand::Temp(j) => &temps[*j],
                })
                .collect();
            temps.push(spec.evaluate(&operand_tensors));
        }
        let mut out = temps
            .pop()
            .unwrap_or_else(|| panic!("factorization has no steps"));
        if contraction.coefficient != 1.0 {
            for v in out.data_mut() {
                *v *= contraction.coefficient;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::TensorRef;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn eqn1_yields_fifteen_versions() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        assert_eq!(fs.len(), 15, "paper: OCTOPI generates fifteen versions");
    }

    #[test]
    fn eqn1_six_minimal_flop_versions() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        let min = fs[0].flops;
        let n_min = fs.iter().filter(|f| f.flops == min).count();
        assert_eq!(n_min, 6, "paper: six versions share the minimal flop count");
        // Strength reduction lowers O(N^6) to O(N^4): three N^4 binary steps.
        assert_eq!(min, 3 * 2 * 10u64.pow(4));
    }

    #[test]
    fn eqn1_naive_tree_costs_n6() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        let max = fs.last().unwrap().flops;
        assert!(
            max >= 2 * 10u64.pow(6),
            "worst tree should be O(N^6): {max}"
        );
    }

    #[test]
    fn all_eqn1_factorizations_compute_the_same_tensor() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1();
        let reference = c.to_einsum(&dims);
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let cc = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        let expect = reference.evaluate(&[&a, &b, &cc, &u]);
        for f in enumerate_factorizations(&c, &dims) {
            let got = f.evaluate(&c, &dims, &[&a, &b, &cc, &u]);
            assert!(
                expect.approx_eq(&got, 1e-10),
                "factorization {} diverges",
                f.key
            );
        }
    }

    #[test]
    fn two_term_contraction_single_step() {
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j", "k"], 8);
        let fs = enumerate_factorizations(&c, &dims);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].steps.len(), 1);
        assert_eq!(fs[0].steps[0].sum_over, vec![IndexVar::new("j")]);
        assert_eq!(fs[0].flops, 2 * 8u64.pow(3));
        assert_eq!(fs[0].temp_elems, 0);
    }

    #[test]
    fn outer_product_has_no_summation() {
        let c = Contraction {
            output: TensorRef::new("T", &["i", "j"]),
            sum_indices: vec![],
            terms: vec![TensorRef::new("x", &["i"]), TensorRef::new("y", &["j"])],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j"], 16);
        let fs = enumerate_factorizations(&c, &dims);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].steps[0].sum_over.is_empty());
    }

    #[test]
    fn single_term_reduction() {
        let c = Contraction {
            output: TensorRef::new("y", &["i"]),
            sum_indices: vec!["j".into()],
            terms: vec![TensorRef::new("A", &["i", "j"])],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j"], 5);
        let fs = enumerate_factorizations(&c, &dims);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].steps.len(), 1);
        assert_eq!(fs[0].steps[0].operands, vec![Operand::Input(0)]);
        let a = Tensor::random(Shape::new([5, 5]), 9);
        let got = fs[0].evaluate(&c, &dims, &[&a]);
        let expect = c.to_einsum(&dims).evaluate(&[&a]);
        assert!(expect.approx_eq(&got, 1e-12));
    }

    #[test]
    fn early_unary_reduction_fires() {
        // k occurs only in A and is summed: the enumerator should reduce A
        // over k before any binary combine.
        let c = Contraction {
            output: TensorRef::new("y", &["i"]),
            sum_indices: vec!["j".into(), "k".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j", "k"]),
                TensorRef::new("b", &["j"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j", "k"], 6);
        let fs = enumerate_factorizations(&c, &dims);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].steps.len(), 2);
        assert_eq!(fs[0].steps[0].operands.len(), 1, "unary reduction first");
        assert_eq!(fs[0].steps[0].sum_over, vec![IndexVar::new("k")]);
        // Validate numerically.
        let a = Tensor::random(Shape::new([6, 6, 6]), 21);
        let b = Tensor::random(Shape::new([6]), 22);
        let got = fs[0].evaluate(&c, &dims, &[&a, &b]);
        let expect = c.to_einsum(&dims).evaluate(&[&a, &b]);
        assert!(expect.approx_eq(&got, 1e-12));
    }

    #[test]
    fn three_term_count_matches_double_factorial() {
        // (2*3-3)!! = 3 distinct trees for three terms.
        let c = Contraction {
            output: TensorRef::new("W", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into()],
            terms: vec![
                TensorRef::new("A", &["i", "l"]),
                TensorRef::new("B", &["j", "m"]),
                TensorRef::new("U", &["l", "m", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j", "k", "l", "m"], 4);
        let fs = enumerate_factorizations(&c, &dims);
        assert_eq!(fs.len(), 3);
    }

    #[test]
    fn factorizations_sorted_by_flops() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        for w in fs.windows(2) {
            assert!(w[0].flops <= w[1].flops);
        }
    }
}
