//! Loop-fusion analysis across the statements of a factorization (§III).
//!
//! After strength reduction, a version is a chain of small loop nests with
//! temporaries flowing between them. When a producer's output loops and its
//! consumer's loops share leading indices, the nests can be fused, which
//! "has better memory usage and enables more optimizations" (paper §III).
//! This module computes, for each producer→consumer edge, how many loops are
//! fusable after reordering, and scores whole factorizations so the pipeline
//! can prefer fusion-friendly versions.

use crate::factorize::{Factorization, Operand};
use std::collections::BTreeSet;
use tensor::{IndexMap, IndexVar};

/// One fusable producer→consumer edge in a factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionEdge {
    /// Index of the producing step.
    pub producer: usize,
    /// Index of the consuming step.
    pub consumer: usize,
    /// Indices that can become shared (fused) loops: present in both the
    /// producer's output and the consumer's output. Loop reordering is free
    /// at the tensor level, so any common subset qualifies.
    pub fusable: Vec<IndexVar>,
    /// Elements of the producer temporary that remain live per fused-loop
    /// iteration (smaller is better: the temp collapses by the fused
    /// extents).
    pub residual_temp_elems: u64,
}

/// Fusion analysis result for a whole factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionPlan {
    pub edges: Vec<FusionEdge>,
    /// Total temp elements with no fusion.
    pub unfused_temp_elems: u64,
    /// Total residual temp elements if every edge is fused maximally.
    pub fused_temp_elems: u64,
}

impl FusionPlan {
    /// Ratio of temporary storage eliminated by fusion (0 = none, →1 = all).
    pub fn savings(&self) -> f64 {
        if self.unfused_temp_elems == 0 {
            return 0.0;
        }
        1.0 - self.fused_temp_elems as f64 / self.unfused_temp_elems as f64
    }
}

/// Analyzes fusion opportunities between each temporary's producer and its
/// (unique, in a tree-shaped factorization) consumer.
pub fn analyze_fusion(f: &Factorization, dims: &IndexMap) -> FusionPlan {
    let mut edges = Vec::new();
    let mut unfused = 0u64;
    let mut fused = 0u64;

    for (j, step) in f.steps.iter().enumerate() {
        // Find the consumer of temp j (skip the final output step).
        let Some((cidx, consumer)) = f
            .steps
            .iter()
            .enumerate()
            .skip(j + 1)
            .find(|(_, s)| s.operands.contains(&Operand::Temp(j)))
        else {
            continue;
        };

        let producer_out: BTreeSet<&IndexVar> = step.indices.iter().collect();
        let consumer_out: BTreeSet<&IndexVar> = consumer.indices.iter().collect();
        let fusable: Vec<IndexVar> = producer_out
            .intersection(&consumer_out)
            .map(|ix| (*ix).clone())
            .collect();

        let temp_elems: u64 = step.indices.iter().map(|ix| dims[ix] as u64).product();
        let fused_extents: u64 = fusable.iter().map(|ix| dims[ix] as u64).product();
        let residual = temp_elems / fused_extents.max(1);

        unfused += temp_elems;
        fused += residual;
        edges.push(FusionEdge {
            producer: j,
            consumer: cidx,
            fusable,
            residual_temp_elems: residual,
        });
    }

    FusionPlan {
        edges,
        unfused_temp_elems: unfused,
        fused_temp_elems: fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Contraction, TensorRef};
    use crate::factorize::enumerate_factorizations;
    use tensor::index::uniform_dims;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn eqn1_best_version_has_two_fusable_edges() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let fs = enumerate_factorizations(&eqn1(), &dims);
        let plan = analyze_fusion(&fs[0], &dims);
        // Three steps: t1 -> t2 -> V, so two producer/consumer edges.
        assert_eq!(plan.edges.len(), 2);
        for e in &plan.edges {
            assert!(
                !e.fusable.is_empty(),
                "paper example fuses loops on each edge"
            );
        }
        assert!(plan.savings() > 0.0);
    }

    #[test]
    fn fusion_savings_bounded() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        for f in enumerate_factorizations(&eqn1(), &dims) {
            let plan = analyze_fusion(&f, &dims);
            let s = plan.savings();
            assert!((0.0..=1.0).contains(&s), "savings {s} out of range");
        }
    }

    #[test]
    fn single_step_has_no_edges() {
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j", "k"], 4);
        let fs = enumerate_factorizations(&c, &dims);
        let plan = analyze_fusion(&fs[0], &dims);
        assert!(plan.edges.is_empty());
        assert_eq!(plan.savings(), 0.0);
    }
}
