//! Parser for the OCTOPI input language.
//!
//! Grammar (whitespace-insensitive; `#` starts a line comment):
//!
//! ```text
//! program   := (dims_block | statement)*
//! dims_block:= 'dims' '{' (IDENT '=' INT ','?)* '}'
//! statement := tensorref ('=' | '+=' | '-=') rhs
//! rhs       := 'Sum' '(' '[' indices ']' ',' product ')' | product
//! product   := (NUMBER '*')? tensorref ('*' tensorref)*
//! tensorref := IDENT '[' indices ']'
//! indices   := IDENT ( (',' | ' ') IDENT )*
//! ```

use crate::ast::{Contraction, Program, TensorRef};
use std::fmt;
use tensor::{IndexMap, IndexVar};

/// Parse failure with a byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(usize),
    Float(f64),
    MinusEq,
    LBracket,
    RBracket,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Star,
    Eq,
    PlusEq,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'#' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                return Ok(out);
            }
            let start = self.pos;
            let c = self.src[self.pos];
            let tok = match c {
                b'[' => {
                    self.pos += 1;
                    Tok::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Tok::RBracket
                }
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'{' => {
                    self.pos += 1;
                    Tok::LBrace
                }
                b'}' => {
                    self.pos += 1;
                    Tok::RBrace
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Eq
                }
                b'+' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::PlusEq
                    } else {
                        return Err(self.err("expected '+='"));
                    }
                }
                b'-' => {
                    if self.src.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::MinusEq
                    } else {
                        return Err(self.err("expected '-='"));
                    }
                }
                c if c.is_ascii_digit() => {
                    let mut v = 0usize;
                    while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                        v = v * 10 + (self.src[self.pos] - b'0') as usize;
                        self.pos += 1;
                    }
                    if self.src.get(self.pos) == Some(&b'.') {
                        self.pos += 1;
                        let mut frac = 0.0f64;
                        let mut scale = 0.1f64;
                        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                            frac += (self.src[self.pos] - b'0') as f64 * scale;
                            scale *= 0.1;
                            self.pos += 1;
                        }
                        Tok::Float(v as f64 + frac)
                    } else {
                        Tok::Int(v)
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    while self.pos < self.src.len()
                        && (self.src[self.pos].is_ascii_alphanumeric()
                            || self.src[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    Tok::Ident(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
                }
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char)));
                }
            };
            out.push((start, tok));
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    /// Source length in bytes: the offset reported for errors at EOF.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.pos).map(|(o, _)| *o).unwrap_or(self.end)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            got => Err(ParseError {
                offset: self.offset(),
                message: format!("expected {want:?}, got {got:?}"),
            }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            got => Err(ParseError {
                offset: self.offset(),
                message: format!("expected identifier, got {got:?}"),
            }),
        }
    }

    /// `IDENT (','? IDENT)*` until a closing bracket.
    fn index_list(&mut self) -> Result<Vec<IndexVar>, ParseError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(_)) => {
                    out.push(IndexVar::new(self.ident()?));
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    }
                }
                Some(Tok::RBracket) => break,
                _ => return Err(self.err("expected index name or ']'")),
            }
        }
        if out.is_empty() {
            return Err(self.err("empty index list"));
        }
        Ok(out)
    }

    fn tensorref(&mut self) -> Result<TensorRef, ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::LBracket)?;
        let indices = self.index_list()?;
        self.expect(&Tok::RBracket)?;
        Ok(TensorRef { name, indices })
    }

    /// `(NUMBER '*')? tensorref ('*' tensorref)*` → (coefficient, terms).
    fn product(&mut self) -> Result<(f64, Vec<TensorRef>), ParseError> {
        let coeff = match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v as f64;
                self.bump();
                self.expect(&Tok::Star)?;
                v
            }
            Some(Tok::Float(v)) => {
                let v = *v;
                self.bump();
                self.expect(&Tok::Star)?;
                v
            }
            _ => 1.0,
        };
        let mut terms = vec![self.tensorref()?];
        while self.peek() == Some(&Tok::Star) {
            self.bump();
            terms.push(self.tensorref()?);
        }
        Ok((coeff, terms))
    }

    fn dims_block(&mut self, dims: &mut IndexMap) -> Result<(), ParseError> {
        self.expect(&Tok::LBrace)?;
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.bump();
                    return Ok(());
                }
                Some(Tok::Ident(_)) => {
                    let name = self.ident()?;
                    self.expect(&Tok::Eq)?;
                    match self.bump() {
                        Some(Tok::Int(v)) => {
                            if v == 0 {
                                return Err(self.err(format!("extent of {name} must be > 0")));
                            }
                            dims.insert(IndexVar::new(name), v);
                        }
                        got => {
                            return Err(ParseError {
                                offset: self.offset(),
                                message: format!("expected integer extent, got {got:?}"),
                            })
                        }
                    }
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    }
                }
                _ => return Err(self.err("expected index extent or '}'")),
            }
        }
    }

    fn statement(&mut self) -> Result<Contraction, ParseError> {
        let output = self.tensorref()?;
        let (accumulate, sign) = match self.bump() {
            Some(Tok::Eq) => (false, 1.0),
            Some(Tok::PlusEq) => (true, 1.0),
            Some(Tok::MinusEq) => (true, -1.0),
            got => {
                return Err(ParseError {
                    offset: self.offset(),
                    message: format!("expected '=', '+=' or '-=', got {got:?}"),
                })
            }
        };
        let (sum_indices, coeff, terms) = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "Sum")
        {
            self.bump();
            self.expect(&Tok::LParen)?;
            self.expect(&Tok::LBracket)?;
            let sums = self.index_list()?;
            self.expect(&Tok::RBracket)?;
            self.expect(&Tok::Comma)?;
            let (coeff, terms) = self.product()?;
            self.expect(&Tok::RParen)?;
            (sums, coeff, terms)
        } else {
            let (coeff, terms) = self.product()?;
            (Vec::new(), coeff, terms)
        };
        Ok(Contraction {
            output,
            sum_indices,
            terms,
            accumulate,
            coefficient: sign * coeff,
        })
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            if matches!(self.peek(), Some(Tok::Ident(s)) if s == "dims") {
                self.bump();
                self.dims_block(&mut prog.dims)?;
            } else {
                prog.statements.push(self.statement()?);
            }
        }
        if prog.statements.is_empty() {
            return Err(self.err("program has no statements"));
        }
        Ok(prog)
    }
}

/// Parses a full OCTOPI program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    Parser {
        toks,
        pos: 0,
        end: src.len(),
    }
    .program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EQN1: &str = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])";

    #[test]
    fn parse_eqn1() {
        let p = parse_program(EQN1).unwrap();
        assert_eq!(p.statements.len(), 1);
        let st = &p.statements[0];
        assert_eq!(st.output.name, "V");
        assert_eq!(st.terms.len(), 4);
        assert_eq!(st.sum_indices.len(), 3);
        assert!(!st.accumulate);
    }

    #[test]
    fn parse_commas_and_accumulate() {
        let p = parse_program("W[i, l] += B[i, k] * U[k, l]").unwrap();
        let st = &p.statements[0];
        assert!(st.accumulate);
        assert!(st.sum_indices.is_empty());
        assert_eq!(st.terms[1].indices[1], IndexVar::new("l"));
    }

    #[test]
    fn parse_dims_block_and_comments() {
        let src = "# spectral element\n dims { i = 10, j = 10 k = 10 }\n V[i j] = A[i k] * B[k j]";
        let p = parse_program(src).unwrap();
        assert_eq!(p.dims.len(), 3);
        assert_eq!(p.dims[&IndexVar::new("k")], 10);
        assert_eq!(p.statements.len(), 1);
    }

    #[test]
    fn parse_multi_statement() {
        let src =
            "T1[i l m] = Sum([n], C[n i] * U[l m n])\nT2[j i l] = Sum([m], B[m j] * T1[i l m])";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 2);
        assert_eq!(p.statements[1].terms[1].name, "T1");
    }

    #[test]
    fn parse_nwchem_style_names() {
        let src = "t3[h3 h2 h1 p6 p5 p4] += Sum([h7], t2[h7 p4 p5 h1] * v2[h3 h2 p6 h7])";
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements[0].output.indices.len(), 6);
        assert_eq!(p.statements[0].sum_indices[0], IndexVar::new("h7"));
    }

    #[test]
    fn parse_minus_eq_and_coefficients() {
        let p = parse_program("t3[h1] -= Sum([h7], t2[h7] * v2[h1 h7])").unwrap();
        let st = &p.statements[0];
        assert!(st.accumulate);
        assert_eq!(st.coefficient, -1.0);

        let p = parse_program("y[i] = 2.5 * A[i j]  x[j]".replace("  ", " * ").as_str()).unwrap();
        assert_eq!(p.statements[0].coefficient, 2.5);

        let p = parse_program("y[i] += Sum([j], 3 * A[i j] * x[j])").unwrap();
        assert_eq!(p.statements[0].coefficient, 3.0);
        assert_eq!(p.statements[0].terms.len(), 2);
    }

    #[test]
    fn coefficient_display_roundtrip() {
        for src in [
            "t3[h1] -= Sum([h7], t2[h7] * v2[h1 h7])",
            "y[i] += Sum([j], 3 * A[i j] * x[j])",
        ] {
            let p = parse_program(src).unwrap();
            let printed = p.statements[0].to_string();
            let p2 = parse_program(&printed).unwrap();
            assert_eq!(p.statements, p2.statements, "{printed}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse_program("V[i j] = A[i j] +").unwrap_err();
        assert!(err.message.contains("+="), "{err}");
    }

    #[test]
    fn error_empty_index_list() {
        assert!(parse_program("V[] = A[i]").is_err());
    }

    #[test]
    fn error_zero_extent() {
        assert!(parse_program("dims { i = 0 }\nV[i] = A[i]").is_err());
    }

    #[test]
    fn error_no_statements() {
        assert!(parse_program("dims { i = 4 }").is_err());
    }

    #[test]
    fn roundtrip_display_reparse() {
        let p = parse_program(EQN1).unwrap();
        let printed = p.statements[0].to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p.statements, p2.statements);
    }
}
