//! Property tests for [`gpusim::ArchDescriptor`]: the hand-rolled TOML
//! canonicalization must round-trip arbitrary valid descriptors
//! losslessly, the content digest must ignore everything that is not a
//! field value (key order, whitespace, comments), and *every* single
//! field edit must change the digest — that is what makes the digest a
//! safe plan-store cache salt.

use gpusim::descriptor::FIELD_NAMES;
use gpusim::{ArchDescriptor, GpuArch};
use proptest::prelude::*;

/// Characters legal in every string field (the key charset is the
/// restrictive one: `[A-Za-z0-9._-]`).
const IDENT_CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '.', '_', '-', 'G', 'T', 'X', 'k',
];

fn ident() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..IDENT_CHARS.len(), 1..16)
        .prop_map(|ixs| ixs.into_iter().map(|i| IDENT_CHARS[i]).collect())
}

/// Strictly positive floats that are exactly representable with a short
/// decimal fraction (≤ 10 digits) and bounded magnitude (< 1024), so a
/// textual edit that appends one digit (at the 1e-11 scale or larger)
/// is guaranteed to move the value by more than half an ULP.
fn pos_f64() -> impl Strategy<Value = f64> {
    (1u64..=1_000_000).prop_map(|n| n as f64 / 1024.0)
}

fn small_u32() -> impl Strategy<Value = u32> {
    1u32..=1_000_000
}

fn small_u64() -> impl Strategy<Value = u64> {
    1u64..=1_000_000_000_000
}

/// An arbitrary *valid* architecture: every string nonempty and in the
/// key charset, every numeric strictly positive.
#[allow(clippy::type_complexity)]
fn arch() -> impl Strategy<Value = GpuArch> {
    (
        (ident(), ident(), ident()),
        (small_u32(), pos_f64(), pos_f64(), pos_f64(), pos_f64()),
        (small_u64(), pos_f64(), small_u32(), small_u32()),
        (
            small_u32(),
            small_u32(),
            small_u32(),
            small_u32(),
            small_u32(),
        ),
        (
            pos_f64(),
            pos_f64(),
            pos_f64(),
            pos_f64(),
            pos_f64(),
            pos_f64(),
        ),
    )
        .prop_map(
            |(
                (name, key, generation),
                (sm_count, clock_ghz, dp_flops, issue_lanes, mem_bw),
                (l2_bytes, l2_bw, smem_per_sm, max_threads),
                (max_blocks, max_warps, regs_per_sm, warp_size, txn_bytes),
                (launch_us, pcie_bw, pcie_lat, dp_lat, l2_lat, compile_s),
            )| {
                let mut a = gpusim::k20();
                a.name = name;
                a.key = key;
                a.generation = generation;
                a.sm_count = sm_count;
                a.clock_ghz = clock_ghz;
                a.dp_flops_per_cycle_per_sm = dp_flops;
                a.issue_lanes_per_cycle_per_sm = issue_lanes;
                a.mem_bw_gbs = mem_bw;
                a.l2_bytes = l2_bytes;
                a.l2_bw_gbs = l2_bw;
                a.smem_per_sm = smem_per_sm;
                a.max_threads_per_sm = max_threads;
                a.max_blocks_per_sm = max_blocks;
                a.max_warps_per_sm = max_warps;
                a.regs_per_sm = regs_per_sm;
                a.warp_size = warp_size;
                a.transaction_bytes = txn_bytes;
                a.kernel_launch_us = launch_us;
                a.pcie_bw_gbs = pcie_bw;
                a.pcie_latency_us = pcie_lat;
                a.dp_latency_cycles = dp_lat;
                a.l2_latency_cycles = l2_lat;
                a.compile_seconds = compile_s;
                a
            },
        )
}

/// Deterministic Fisher–Yates with a splitmix-style generator, so line
/// permutations come from a plain u64 seed.
fn shuffle(lines: &mut [String], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..lines.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        lines.swap(i, j);
    }
}

proptest! {
    /// TOML → descriptor → TOML is lossless: the reparse is equal (so
    /// every f64 bit survives the text round trip) and re-serializes to
    /// byte-identical text.
    #[test]
    fn canonical_toml_round_trips_losslessly(a in arch()) {
        let d = ArchDescriptor::from_arch(a);
        let text = d.canonical_toml();
        let back = ArchDescriptor::parse_toml(&text)
            .expect("canonical text must reparse");
        prop_assert_eq!(&back, &d);
        prop_assert_eq!(back.canonical_toml(), text);
    }

    /// The digest depends only on field values: reordering the lines,
    /// changing the whitespace around `=`, and sprinkling whole-line and
    /// trailing comments leaves it untouched.
    #[test]
    fn digest_ignores_key_order_whitespace_and_comments(
        a in arch(),
        seed in 0u64..=u64::MAX,
        pad in 0usize..4,
    ) {
        let d = ArchDescriptor::from_arch(a);
        let mut lines: Vec<String> =
            d.canonical_toml().lines().map(str::to_string).collect();
        shuffle(&mut lines, seed);
        let mut text = String::from("# architecture descriptor\n\n");
        for line in &lines {
            let (key, value) = line.split_once(" = ")
                .expect("canonical lines are `key = value`");
            text.push_str(&" ".repeat(pad));
            text.push_str(key);
            text.push_str(&" ".repeat(pad));
            text.push('=');
            text.push_str(&" ".repeat(pad));
            text.push_str(value);
            text.push_str("  # trailing note\n\n");
        }
        let back = ArchDescriptor::parse_toml(&text)
            .expect("reformatted text must reparse");
        prop_assert_eq!(back.digest(), d.digest());
        prop_assert_eq!(&back, &d);
    }

    /// Editing any single field — whichever one — produces a different
    /// digest, so an edited descriptor file can never address the plans
    /// its predecessor wrote.
    #[test]
    fn any_single_field_edit_changes_the_digest(
        a in arch(),
        field_ix in 0usize..FIELD_NAMES.len(),
    ) {
        let d = ArchDescriptor::from_arch(a);
        let field = FIELD_NAMES[field_ix];
        let prefix = format!("{field} = ");
        let mut edited = String::new();
        let mut hits = 0;
        for line in d.canonical_toml().lines() {
            if line.starts_with(&prefix) {
                hits += 1;
                if let Some(unquoted) = line.strip_suffix('"') {
                    // String field: append a character inside the quotes.
                    edited.push_str(unquoted);
                    edited.push_str("x\"\n");
                } else {
                    // Numeric field: append a digit (the strategies keep
                    // values small enough that this always changes the
                    // parsed value without overflowing).
                    edited.push_str(line);
                    edited.push_str("1\n");
                }
            } else {
                edited.push_str(line);
                edited.push('\n');
            }
        }
        prop_assert_eq!(hits, 1, "field {} must appear exactly once", field);
        let back = ArchDescriptor::parse_toml(&edited)
            .expect("edited text must still be a valid descriptor");
        prop_assert_ne!(back.digest(), d.digest());
    }
}
