//! CUDA occupancy model: how many blocks and warps fit on one SM.

use crate::arch::GpuArch;
use tcr::mapping::MappedKernel;

/// Occupancy of one kernel on one architecture.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Resource cap: blocks that *can* be resident per SM.
    pub cap_blocks_per_sm: u32,
    /// Blocks actually resident per active SM in the first wave (the
    /// hardware scheduler spreads blocks round-robin across SMs).
    pub resident_blocks: u32,
    /// Resident warps per active SM.
    pub active_warps_per_sm: u32,
    /// `active_warps / max_warps`, in (0, 1].
    pub fraction: f64,
    /// SMs that receive at least one block.
    pub active_sms: u32,
    /// Number of block waves needed to drain the grid.
    pub waves: u32,
    /// Fraction of warp lanes doing useful work (partial warps waste lanes).
    pub lane_efficiency: f64,
    /// Estimated registers per thread.
    pub regs_per_thread: u32,
}

/// Registers per thread: a base working set plus the unrolled accumulator /
/// address registers. Mirrors how unrolling raises pressure in real kernels.
pub fn estimate_regs_per_thread(kernel: &MappedKernel) -> u32 {
    let base = 18u32;
    let per_input = 2 * kernel.inputs.len() as u32;
    let unroll_cost = 2 * (kernel.unroll as u32).saturating_sub(1);
    base + per_input + unroll_cost
}

/// Computes the occupancy of `kernel` on `arch`.
pub fn occupancy(kernel: &MappedKernel, arch: &GpuArch) -> Occupancy {
    let tpb = kernel.threads_per_block() as u32;
    let warp = arch.warp_size;
    let warps_per_block = tpb.div_ceil(warp);
    let regs_per_thread = estimate_regs_per_thread(kernel);

    let by_threads = arch.max_threads_per_sm / tpb.max(1);
    let by_blocks = arch.max_blocks_per_sm;
    let by_warps = arch.max_warps_per_sm / warps_per_block.max(1);
    let by_regs = arch.regs_per_sm / (regs_per_thread * tpb).max(1);
    let smem = kernel.smem_bytes_per_block() as u32;
    let by_smem = if smem > 0 {
        arch.smem_per_sm / smem.max(1)
    } else {
        u32::MAX
    };
    let cap = by_threads
        .min(by_blocks)
        .min(by_warps)
        .min(by_regs)
        .min(by_smem)
        .max(1);

    let num_blocks = kernel.num_blocks() as u32;
    let active_sms = num_blocks.min(arch.sm_count).max(1);
    let resident_blocks = num_blocks.div_ceil(active_sms).min(cap).max(1);
    let active_warps = (resident_blocks * warps_per_block).min(arch.max_warps_per_sm);
    let capacity = cap * arch.sm_count;
    let waves = num_blocks.div_ceil(capacity).max(1);

    Occupancy {
        cap_blocks_per_sm: cap,
        resident_blocks,
        active_warps_per_sm: active_warps,
        fraction: active_warps as f64 / arch.max_warps_per_sm as f64,
        active_sms,
        waves,
        lane_efficiency: tpb as f64 / (warps_per_block * warp) as f64,
        regs_per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{c2050, gtx980, k20};
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tcr::mapping::map_kernel;
    use tcr::space::{LoopSel, OpConfig};
    use tensor::index::uniform_dims;
    use tensor::IndexVar;

    fn kernel(n: usize, unroll: usize) -> tcr::MappedKernel {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims);
        let cfg = OpConfig {
            tx: IndexVar::new("k"),
            ty: LoopSel::One,
            bx: LoopSel::Var(IndexVar::new("i")),
            by: LoopSel::One,
            interior: vec![IndexVar::new("j")],
            unroll,
            staged: vec![],
        };
        map_kernel(&p, 0, &cfg, false).unwrap()
    }

    #[test]
    fn fermi_caps_blocks_per_sm_at_eight() {
        let k = kernel(16, 1);
        let occ = occupancy(&k, &c2050());
        assert_eq!(occ.cap_blocks_per_sm, 8);
    }

    #[test]
    fn small_grids_spread_across_sms() {
        // 16 blocks on 14 SMs: 14 active SMs, at most 2 resident each.
        let k = kernel(16, 1);
        let occ = occupancy(&k, &c2050());
        assert_eq!(occ.active_sms, 14);
        assert_eq!(occ.resident_blocks, 2);
        assert_eq!(occ.waves, 1);
        assert!(occ.fraction < 0.1);
    }

    #[test]
    fn partial_warps_reduce_lane_efficiency() {
        // 10-thread blocks: 1 warp per block, 10/32 lanes used.
        let k = kernel(10, 1);
        let occ = occupancy(&k, &gtx980());
        assert!((occ.lane_efficiency - 10.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn unroll_raises_register_pressure() {
        let k1 = kernel(64, 1);
        let k8 = kernel(64, 8);
        assert!(
            estimate_regs_per_thread(&k8) > estimate_regs_per_thread(&k1),
            "unrolling must cost registers"
        );
    }

    #[test]
    fn invariants_hold_across_architectures() {
        let k = kernel(64, 1);
        for arch in [gtx980(), k20(), c2050()] {
            let occ = occupancy(&k, &arch);
            assert!(occ.waves >= 1);
            assert!(occ.active_sms >= 1 && occ.active_sms <= arch.sm_count);
            assert!(occ.fraction > 0.0 && occ.fraction <= 1.0);
            assert!(occ.resident_blocks <= occ.cap_blocks_per_sm);
        }
    }
}
