//! Functional execution and timing of fused kernels (`tcr::fusion`).
//!
//! A fused kernel runs its phases back to back inside each block,
//! synchronizing on the shared-memory slices between phases. The executor
//! interprets exactly that structure; the timing model applies the same
//! per-architecture bounds as `timing` but accounts the temporaries as
//! shared-memory (free of global traffic) and charges a single launch.

use crate::arch::GpuArch;
use tcr::fusion::{FusedKernel, FusedOperand, FusionPhase};
use tcr::program::TcrProgram;
use tensor::{IndexVar, Tensor};

/// Variable assignment environment (tiny: fused + phase vars).
#[derive(Default)]
struct Env {
    vars: Vec<(IndexVar, usize)>,
}

impl Env {
    fn set(&mut self, v: &IndexVar, val: usize) {
        if let Some(slot) = self.vars.iter_mut().find(|(x, _)| x == v) {
            slot.1 = val;
        } else {
            self.vars.push((v.clone(), val));
        }
    }

    fn get(&self, v: &IndexVar) -> usize {
        self.vars
            .iter()
            .find(|(x, _)| x == v)
            .map(|(_, val)| *val)
            .unwrap_or_else(|| panic!("unbound fused-kernel variable {v}"))
    }

    fn addr(&self, terms: &[(IndexVar, usize)]) -> usize {
        terms.iter().map(|(v, s)| self.get(v) * s).sum()
    }
}

/// Iterates a rectangular space, calling `f` with the odometer values.
fn for_each_point(dims: &[(IndexVar, usize)], env: &mut Env, f: &mut impl FnMut(&mut Env)) {
    fn rec(dims: &[(IndexVar, usize)], d: usize, env: &mut Env, f: &mut impl FnMut(&mut Env)) {
        if d == dims.len() {
            f(env);
            return;
        }
        for v in 0..dims[d].1 {
            env.set(&dims[d].0, v);
            rec(dims, d + 1, env, f);
        }
    }
    rec(dims, 0, env, f);
}

fn run_phase(
    phase: &FusionPhase,
    env: &mut Env,
    slices: &mut [Vec<f64>],
    buffers: &mut [Vec<f64>],
    out_global: Option<usize>,
) {
    // Split borrow: the target slice is written, others read.
    let space: Vec<(IndexVar, usize)> = phase
        .par_dims
        .iter()
        .chain(phase.sum_dims.iter())
        .cloned()
        .collect();
    for_each_point(&space, env, &mut |env| {
        let mut prod = phase.coefficient;
        for opnd in phase.operands.iter() {
            prod *= match opnd {
                FusedOperand::Global { array, terms } => buffers[*array][env.addr(terms)],
                FusedOperand::Slice { slice, terms } => slices[*slice][env.addr(terms)],
            };
        }
        match (phase.target_slice, out_global) {
            (Some(sid), _) => {
                let a = env.addr(&phase.out_terms);
                slices[sid][a] += prod;
            }
            (None, Some(out_id)) => {
                let a = env.addr(&phase.out_terms);
                buffers[out_id][a] += prod;
            }
            (None, None) => unreachable!("final phase needs a global output"),
        }
    });
}

/// Executes the fused kernel over all blocks. `buffers[i]` is array id
/// `i`'s global storage (temporaries' buffers are ignored — they live in
/// per-block shared memory).
pub fn execute_fused(kernel: &FusedKernel, program: &TcrProgram, buffers: &mut [Vec<f64>]) {
    let out_id = program.output_id();
    let mut slices: Vec<Vec<f64>> = kernel.slices.iter().map(|s| vec![0.0; s.len]).collect();
    let mut env = Env::default();
    for_each_point(&kernel.fused.clone(), &mut env, &mut |env| {
        for s in slices.iter_mut() {
            s.iter_mut().for_each(|v| *v = 0.0);
        }
        for phase in &kernel.phases {
            run_phase(phase, env, &mut slices, buffers, Some(out_id));
        }
    });
}

/// Full program execution through the fused kernel: uploads inputs, runs,
/// returns the output tensor (mirrors `execute_program`).
pub fn execute_fused_program(
    kernel: &FusedKernel,
    program: &TcrProgram,
    inputs: &[&Tensor],
) -> Tensor {
    let input_ids = program.input_ids();
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    let mut buffers: Vec<Vec<f64>> = program
        .arrays
        .iter()
        .map(|a| vec![0.0; a.len(&program.dims)])
        .collect();
    for (k, id) in input_ids.iter().enumerate() {
        buffers[*id].copy_from_slice(inputs[k].data());
    }
    execute_fused(kernel, program, &mut buffers);
    let out_id = program.output_id();
    Tensor::from_vec(
        program.arrays[out_id].shape(&program.dims),
        std::mem::take(&mut buffers[out_id]),
    )
}

/// Timing of a fused kernel.
#[derive(Clone, Debug)]
pub struct FusedTiming {
    pub time_s: f64,
    pub launch_s: f64,
    /// Per-phase body time, seconds.
    pub phase_s: Vec<f64>,
    pub flops: u64,
    /// Global bytes after fusion (temporaries are free).
    pub global_bytes: f64,
}

/// Times the fused kernel on `arch` with the same bound structure as
/// `timing::time_kernel`, applied per phase (phases synchronize, so their
/// times add).
pub fn time_fused(kernel: &FusedKernel, program: &TcrProgram, arch: &GpuArch) -> FusedTiming {
    let clock_hz = arch.clock_ghz * 1e9;
    let blocks = kernel.num_blocks() as f64;
    let tpb = kernel.threads_per_block() as f64;
    let warps_per_block = (tpb / arch.warp_size as f64).ceil();
    let lane_eff = tpb / (warps_per_block * arch.warp_size as f64);

    // Occupancy: limited by threads, blocks and shared memory.
    let by_threads = (arch.max_threads_per_sm as f64 / tpb).floor().max(1.0);
    let by_smem = if kernel.smem_bytes() > 0 {
        (arch.smem_per_sm as f64 / kernel.smem_bytes() as f64)
            .floor()
            .max(1.0)
    } else {
        f64::INFINITY
    };
    let cap = by_threads.min(arch.max_blocks_per_sm as f64).min(by_smem);
    let active_sms = blocks.min(arch.sm_count as f64).max(1.0);
    let resident = (blocks / active_sms).ceil().min(cap).max(1.0);
    let active_warps = resident * warps_per_block;
    let waves = (blocks / (cap * arch.sm_count as f64)).ceil().max(1.0);

    let dp_lane_width = arch.dp_flops_per_cycle_per_sm / 2.0;
    let dp_util =
        (active_warps * arch.warp_size as f64 / arch.dp_latency_cycles / dp_lane_width).min(1.0);

    let mut phase_s = Vec::with_capacity(kernel.phases.len());
    let mut global_bytes_total = 0.0;
    for phase in &kernel.phases {
        let par: f64 = phase.par_dims.iter().map(|(_, e)| *e as f64).product();
        let sums: f64 = phase.sum_dims.iter().map(|(_, e)| *e as f64).product();
        let points_per_block = par * sums;
        let fma_total = blocks * points_per_block;

        // DP pipe.
        let dp_s = fma_total / (active_sms * dp_lane_width * clock_hz * dp_util * lane_eff);

        // Global traffic: only Global operands and the final output.
        let inner_par = phase.par_dims.last().map(|(v, _)| v.clone());
        let mut bytes = 0.0;
        let mut smem_loads_per_point = 0.0;
        let mut global_loads_per_point = 0.0;
        for opnd in &phase.operands {
            match opnd {
                FusedOperand::Global { terms, .. } => {
                    global_loads_per_point += 1.0;
                    // Coalescing proxy: unit stride under the thread-mapped
                    // innermost parallel dim => dense 8 B/point; otherwise a
                    // 128 B transaction serves a single 8 B value, softened
                    // by line reuse across the innermost summation loop.
                    let coalesced = inner_par
                        .as_ref()
                        .map(|v| terms.iter().any(|(tv, s)| tv == v && *s == 1))
                        .unwrap_or(false);
                    let waste = if coalesced { 1.0 } else { 4.0 };
                    bytes += blocks * points_per_block * 8.0 * waste;
                }
                FusedOperand::Slice { .. } => {
                    smem_loads_per_point += 1.0;
                }
            }
        }
        if phase.target_slice.is_none() {
            bytes += blocks * par * 8.0; // coalesced stores of the output
            if kernel.accumulate {
                bytes += blocks * par * 8.0;
            }
        }
        global_bytes_total += bytes;
        let l2_s = bytes / (arch.l2_bw_gbs * 1e9);
        let dram_s = {
            // Footprint of global arrays referenced by this phase.
            let fp: f64 = phase
                .operands
                .iter()
                .filter_map(|o| match o {
                    FusedOperand::Global { array, .. } => {
                        Some(program.arrays[*array].len(&program.dims) as f64 * 8.0)
                    }
                    FusedOperand::Slice { .. } => None,
                })
                .sum();
            let hit = (arch.l2_bytes as f64 / fp.max(1.0)).min(1.0).sqrt();
            let dram = fp + (bytes - fp).max(0.0) * (1.0 - hit);
            dram / (arch.mem_bw_gbs * 1e9)
        };

        // Latency floor: per-thread chain = sums x (FMA + stalls).
        let per_thread_points = (par / tpb).ceil() * sums;
        let stall_div = 1.0 + active_warps / 4.0;
        let stall = global_loads_per_point * arch.l2_latency_cycles / stall_div
            + smem_loads_per_point * 30.0 / stall_div;
        let serial_s = waves * per_thread_points * (arch.dp_latency_cycles + stall) / clock_hz;

        // Issue bound.
        let instr = blocks * points_per_block * 4.0; // FMA + addr + loop
        let issue_s =
            instr / (active_sms * arch.issue_lanes_per_cycle_per_sm * clock_hz * lane_eff);

        // Barrier cost between phases (~ tens of cycles per resident warp).
        let sync_s = 60.0 / clock_hz * waves;

        phase_s.push(dp_s.max(l2_s).max(dram_s).max(serial_s).max(issue_s) + sync_s);
    }

    let launch_s = arch.kernel_launch_us * 1e-6;
    FusedTiming {
        time_s: launch_s + phase_s.iter().sum::<f64>(),
        launch_s,
        phase_s,
        flops: kernel.flops(),
        global_bytes: global_bytes_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tcr::fusion::build_fused;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn eqn1_program(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("ex", &c, &fs[0], &dims)
    }

    #[test]
    fn fused_execution_matches_oracle() {
        let n = 5;
        let p = eqn1_program(n);
        let k = build_fused(&p).expect("fusable");
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let c = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        let expect = p.evaluate(&[&a, &b, &c, &u]);
        let got = execute_fused_program(&k, &p, &[&a, &b, &c, &u]);
        assert!(expect.approx_eq(&got, 1e-10), "fused execution diverges");
    }

    #[test]
    fn fused_saves_launches_for_tiny_chains() {
        // Eqn.(1) at N=10 is launch-bound: one fused launch must beat three
        // separate ones.
        let p = eqn1_program(10);
        let k = build_fused(&p).unwrap();
        let arch = crate::arch::gtx980();
        let fused = time_fused(&k, &p, &arch);
        // Compare against three bare launches alone (lower bound of the
        // unfused chain).
        let three_launches = 3.0 * arch.kernel_launch_us * 1e-6;
        assert!(
            fused.time_s < three_launches,
            "fused {} should beat 3 launches {}",
            fused.time_s,
            three_launches
        );
        assert_eq!(fused.flops, p.flops());
    }

    #[test]
    fn fused_timing_deterministic_and_positive() {
        let p = eqn1_program(10);
        let k = build_fused(&p).unwrap();
        let arch = crate::arch::k20();
        let a = time_fused(&k, &p, &arch);
        let b = time_fused(&k, &p, &arch);
        assert_eq!(a.time_s, b.time_s);
        assert!(a.time_s > a.launch_s);
        assert_eq!(a.phase_s.len(), 3);
        assert!(a.global_bytes > 0.0);
    }

    #[test]
    fn fusion_beats_the_unfused_chain_on_launch_bound_sizes() {
        // Eqn.(1) at N=10: three tiny kernels vs one fused kernel. The
        // paper's motivation for fusion ("better memory usage" + fewer
        // kernels) must show up as a simulated-time win.
        let p = eqn1_program(10);
        let k = build_fused(&p).unwrap();
        let arch = crate::arch::gtx980();
        let fused = time_fused(&k, &p, &arch);

        let space = tcr::space::ProgramSpace::build(&p);
        let mut best_unfused = f64::INFINITY;
        let total = space.len();
        for frac in 0..64u128 {
            let cfg = space.config(total * frac / 64);
            let kernels = tcr::mapping::map_program(&p, &space, &cfg, false).unwrap();
            best_unfused =
                best_unfused.min(crate::timing::time_program(&p, &kernels, &arch, false).gpu_s);
        }
        assert!(
            fused.time_s < best_unfused,
            "fused {} must beat unfused best-of-64 {}",
            fused.time_s,
            best_unfused
        );
    }
}
