//! Deterministic execution-time model: per-architecture rooflines.
//!
//! A kernel's time is a fixed launch overhead plus the largest of five
//! mechanistic bounds:
//!
//! 1. **DP pipe** — FMA work over the double-precision lane throughput,
//!    throttled by occupancy (a serial accumulation chain needs enough
//!    resident warps to cover the FMA latency),
//! 2. **instruction issue** — all lane-instructions (FMA + loads + stores +
//!    loop overhead, reduced by unrolling) over the SM issue width,
//! 3. **L2 bandwidth** — global-memory transactions (coalescing-dependent)
//!    over the L2 bandwidth,
//! 4. **DRAM bandwidth** — compulsory footprint plus L2-miss traffic over
//!    the DRAM bandwidth,
//! 5. **latency floor** — per-wave critical path of the dependent FMA chain
//!    and unhidden memory stalls (dominates tiny kernels).
//!
//! A program's time adds PCIe transfers for the original inputs and final
//! output (temporaries stay device-resident — §II.B: "the data remains on
//! the GPU across these calls").

use crate::arch::GpuArch;
use crate::coalesce::{kernel_traffic, TrafficSummary};
use crate::occupancy::{occupancy, Occupancy};
use tcr::mapping::MappedKernel;
use tcr::program::TcrProgram;

/// Timing breakdown of one kernel.
#[derive(Clone, Debug)]
pub struct KernelTiming {
    pub name: String,
    /// Total kernel time including launch overhead, seconds.
    pub time_s: f64,
    pub launch_s: f64,
    pub dp_pipe_s: f64,
    pub issue_s: f64,
    pub l2_s: f64,
    pub dram_s: f64,
    pub serial_s: f64,
    pub flops: u64,
    pub occupancy: Occupancy,
    pub traffic: TrafficSummary,
}

impl KernelTiming {
    /// Which bound dominated (for reports / ablations).
    pub fn bottleneck(&self) -> &'static str {
        let body = self.time_s - self.launch_s;
        let candidates = [
            (self.dp_pipe_s, "dp-pipe"),
            (self.issue_s, "issue"),
            (self.l2_s, "l2-bw"),
            (self.dram_s, "dram-bw"),
            (self.serial_s, "latency"),
        ];
        let (mut best, mut name) = (0.0f64, "launch");
        for (v, n) in candidates {
            if v > best {
                best = v;
                name = n;
            }
        }
        if best >= body * 0.999 {
            name
        } else {
            "launch"
        }
    }
}

/// Timing of a whole program on one architecture.
#[derive(Clone, Debug)]
pub struct ProgramTiming {
    pub kernels: Vec<KernelTiming>,
    /// Device-side time (kernels + launches), seconds.
    pub gpu_s: f64,
    /// Host↔device transfer time, seconds (0 when transfers are excluded).
    pub transfer_s: f64,
    pub total_s: f64,
    pub flops: u64,
}

impl ProgramTiming {
    /// Sustained GFlop/s including transfer time (the paper includes "the
    /// time to transfer data back and forth", §VII).
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.total_s / 1e9
    }

    /// GFlop/s of the device-side computation alone.
    pub fn gflops_device(&self) -> f64 {
        self.flops as f64 / self.gpu_s / 1e9
    }
}

/// Per-thread lane-instruction estimate: FMA + memory + loop overhead.
fn instr_per_thread(kernel: &MappedKernel) -> f64 {
    let trip = kernel.interior_trip_count() as f64;
    let fma = trip;
    let loads: f64 = (0..kernel.inputs.len())
        .map(|k| kernel.input_loads_per_thread(k) as f64)
        .sum();
    let stores = kernel.output_stores_per_thread() as f64;
    // Loop bookkeeping: ~2 instructions (increment + branch) per iteration
    // of each loop level; the innermost level is divided by the unroll
    // factor (that is precisely what unrolling buys).
    let mut overhead = 0.0;
    let mut iters = 1.0;
    let n = kernel.interior.len();
    for (d, l) in kernel.interior.iter().enumerate() {
        iters *= l.extent as f64;
        let per_level = if d + 1 == n {
            iters / kernel.unroll as f64
        } else {
            iters
        };
        overhead += 2.0 * per_level;
    }
    fma + 1.5 * (loads + stores) + overhead + 8.0
}

/// Checks that a mapped kernel is launchable on `arch` before the model is
/// asked to time it: nonzero launch geometry, block within the CUDA thread
/// limit, staged shared memory within the SM's budget. The pipeline runs
/// this as its simulation-stage guard so an unlaunchable kernel becomes a
/// quarantined configuration instead of a nonsense time.
pub fn validate_kernel(kernel: &MappedKernel, arch: &GpuArch) -> Result<(), String> {
    let threads = kernel.threads_per_block();
    if threads == 0 || kernel.num_blocks() == 0 {
        return Err(format!(
            "kernel {} has an empty launch geometry ({} blocks × {} threads)",
            kernel.name,
            kernel.num_blocks(),
            threads
        ));
    }
    if threads > 1024 {
        return Err(format!(
            "kernel {} block of {} threads exceeds the 1024-thread CUDA limit",
            kernel.name, threads
        ));
    }
    if threads > arch.max_threads_per_sm as usize {
        return Err(format!(
            "kernel {} block of {} threads exceeds {} threads/SM on {}",
            kernel.name, threads, arch.max_threads_per_sm, arch.name
        ));
    }
    let smem = kernel.smem_bytes_per_block();
    if smem > arch.smem_per_sm as usize {
        return Err(format!(
            "kernel {} stages {} B of shared memory per block, over the {} B/SM budget on {}",
            kernel.name, smem, arch.smem_per_sm, arch.name
        ));
    }
    if let Some(l) = kernel.interior.iter().find(|l| l.extent == 0) {
        return Err(format!(
            "kernel {} interior loop {} has zero extent",
            kernel.name, l.var
        ));
    }
    Ok(())
}

/// The five mechanistic bounds of one kernel, plus the occupancy and
/// traffic summaries they derive from. Shared by [`time_kernel`] (full
/// breakdown) and [`kernel_time_s`] (scalar fast path), so the two are
/// bitwise identical by construction.
struct KernelBounds {
    occ: Occupancy,
    traffic: TrafficSummary,
    dp_pipe_s: f64,
    issue_s: f64,
    l2_s: f64,
    dram_s: f64,
    serial_s: f64,
}

fn kernel_bounds(kernel: &MappedKernel, arch: &GpuArch) -> KernelBounds {
    let occ = occupancy(kernel, arch);
    let traffic = kernel_traffic(kernel, arch);
    let clock_hz = arch.clock_ghz * 1e9;
    let total_threads = (kernel.num_blocks() * kernel.threads_per_block()) as f64;
    let flops = kernel.flops();

    // 1. DP pipe with occupancy throttling: a warp can issue one dependent
    //    FMA of its accumulation chain every `dp_latency` cycles.
    let dp_lane_width = arch.dp_flops_per_cycle_per_sm / 2.0;
    let supply = occ.active_warps_per_sm as f64 * arch.warp_size as f64 / arch.dp_latency_cycles;
    let dp_util = (supply / dp_lane_width).min(1.0);
    let fma_total = flops as f64 / 2.0;
    let dp_pipe_s = fma_total
        / (occ.active_sms as f64 * dp_lane_width * clock_hz * dp_util * occ.lane_efficiency);

    // 2. Instruction issue.
    let instr_total = total_threads * instr_per_thread(kernel);
    let issue_s = instr_total
        / (occ.active_sms as f64
            * arch.issue_lanes_per_cycle_per_sm
            * clock_hz
            * occ.lane_efficiency);

    // 3. L2 bandwidth.
    let l2_s = traffic.l2_bytes / (arch.l2_bw_gbs * 1e9);

    // 4. DRAM bandwidth: compulsory footprint plus the L2 misses of the
    //    remaining traffic. The hit estimate decays with the ratio of
    //    footprint to cache capacity (square root: reuse windows overlap).
    let hit = (arch.l2_bytes as f64 / traffic.footprint_bytes.max(1.0))
        .min(1.0)
        .sqrt();
    let extra = (traffic.l2_bytes - traffic.footprint_bytes).max(0.0);
    let dram_bytes = traffic.footprint_bytes + extra * (1.0 - hit);
    let dram_s = dram_bytes / (arch.mem_bw_gbs * 1e9);

    // 5. Latency floor: per-wave critical path. Each interior point costs a
    //    dependent FMA plus memory stalls that shrink with warp-level
    //    parallelism and unrolling (independent loads overlap).
    let stall_div = 1.0 + occ.active_warps_per_sm as f64 / 4.0 + 2.0 * (kernel.unroll as f64 - 1.0);
    // Shared-memory reads cost ~30 cycles instead of an L2 round trip.
    let stall_cycles_per_point: f64 = (0..kernel.inputs.len())
        .map(|k| {
            if kernel.is_staged(k) {
                30.0
            } else {
                arch.l2_latency_cycles
            }
        })
        .sum();
    let per_point_cycles = arch.dp_latency_cycles + stall_cycles_per_point / stall_div;
    let serial_s =
        occ.waves as f64 * kernel.interior_trip_count() as f64 * per_point_cycles / clock_hz;

    KernelBounds {
        occ,
        traffic,
        dp_pipe_s,
        issue_s,
        l2_s,
        dram_s,
        serial_s,
    }
}

/// Times one kernel on `arch`.
pub fn time_kernel(kernel: &MappedKernel, arch: &GpuArch) -> KernelTiming {
    let b = kernel_bounds(kernel, arch);
    let launch_s = arch.kernel_launch_us * 1e-6;
    let body = b
        .dp_pipe_s
        .max(b.issue_s)
        .max(b.l2_s)
        .max(b.dram_s)
        .max(b.serial_s);
    KernelTiming {
        name: kernel.name.clone(),
        time_s: launch_s + body,
        launch_s,
        dp_pipe_s: b.dp_pipe_s,
        issue_s: b.issue_s,
        l2_s: b.l2_s,
        dram_s: b.dram_s,
        serial_s: b.serial_s,
        flops: kernel.flops(),
        occupancy: b.occ,
        traffic: b.traffic,
    }
}

/// Total time of one kernel (`time_kernel(..).time_s`) without building the
/// breakdown struct or cloning the kernel name — the memoized per-op hot
/// path's variant. Bitwise identical to the full path: both compute the
/// same [`kernel_bounds`].
pub fn kernel_time_s(kernel: &MappedKernel, arch: &GpuArch) -> f64 {
    let b = kernel_bounds(kernel, arch);
    let launch_s = arch.kernel_launch_us * 1e-6;
    launch_s
        + b.dp_pipe_s
            .max(b.issue_s)
            .max(b.l2_s)
            .max(b.dram_s)
            .max(b.serial_s)
}

/// Times a whole mapped program. `include_transfer` adds PCIe movement of
/// the inputs and output (the paper's numbers include transfers).
pub fn time_program(
    program: &TcrProgram,
    kernels: &[MappedKernel],
    arch: &GpuArch,
    include_transfer: bool,
) -> ProgramTiming {
    let per_kernel: Vec<KernelTiming> = kernels.iter().map(|k| time_kernel(k, arch)).collect();
    let gpu_s: f64 = per_kernel.iter().map(|k| k.time_s).sum();
    let transfer_s = if include_transfer {
        program.transfer_bytes() as f64 / (arch.pcie_bw_gbs * 1e9)
            + 2.0 * arch.pcie_latency_us * 1e-6
    } else {
        0.0
    };
    let flops = per_kernel.iter().map(|k| k.flops).sum();
    ProgramTiming {
        kernels: per_kernel,
        gpu_s,
        transfer_s,
        total_s: gpu_s + transfer_s,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{all_architectures, c2050, gtx980};
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tcr::mapping::{map_kernel, map_program};
    use tcr::space::{Configuration, LoopSel, OpConfig, ProgramSpace};
    use tensor::index::uniform_dims;
    use tensor::IndexVar;

    fn matmul_program(n: usize) -> tcr::TcrProgram {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims)
    }

    fn kernel_with(p: &tcr::TcrProgram, tx: &str, unroll: usize) -> tcr::MappedKernel {
        let other = if tx == "k" { "i" } else { "k" };
        let cfg = OpConfig {
            tx: IndexVar::new(tx),
            ty: LoopSel::One,
            bx: LoopSel::Var(IndexVar::new(other)),
            by: LoopSel::One,
            interior: vec![IndexVar::new("j")],
            unroll,
            staged: vec![],
        };
        map_kernel(p, 0, &cfg, false).unwrap()
    }

    #[test]
    fn timing_is_deterministic() {
        let p = matmul_program(64);
        let k = kernel_with(&p, "k", 2);
        let arch = gtx980();
        let a = time_kernel(&k, &arch).time_s;
        let b = time_kernel(&k, &arch).time_s;
        assert_eq!(a, b);
    }

    #[test]
    fn fast_path_time_matches_full_breakdown_bitwise() {
        let p = matmul_program(96);
        for arch in all_architectures() {
            for unroll in [1, 2, 4] {
                let k = kernel_with(&p, "k", unroll);
                assert_eq!(kernel_time_s(&k, &arch), time_kernel(&k, &arch).time_s);
            }
        }
    }

    #[test]
    fn coalesced_beats_strided() {
        let p = matmul_program(128);
        let arch = gtx980();
        let good = time_kernel(&kernel_with(&p, "k", 1), &arch);
        let bad = time_kernel(&kernel_with(&p, "i", 1), &arch);
        assert!(
            good.time_s < bad.time_s,
            "coalesced {} !< strided {}",
            good.time_s,
            bad.time_s
        );
    }

    #[test]
    fn unrolling_helps_serial_small_kernels() {
        let p = matmul_program(32);
        let arch = c2050();
        let u1 = time_kernel(&kernel_with(&p, "k", 1), &arch);
        let u4 = time_kernel(&kernel_with(&p, "k", 4), &arch);
        assert!(
            u4.serial_s < u1.serial_s,
            "unroll must shrink the latency floor"
        );
    }

    #[test]
    fn tiny_kernels_are_launch_bound() {
        let p = matmul_program(10);
        let arch = gtx980();
        let t = time_kernel(&kernel_with(&p, "k", 1), &arch);
        assert!(t.launch_s > 0.5 * (t.time_s - t.launch_s));
        assert_eq!(t.bottleneck(), "latency");
    }

    #[test]
    fn program_time_accumulates_and_transfers() {
        let p = matmul_program(32);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &Configuration { choice: vec![0] }, false).unwrap();
        let arch = gtx980();
        let with = time_program(&p, &kernels, &arch, true);
        let without = time_program(&p, &kernels, &arch, false);
        assert!(with.total_s > without.total_s);
        assert_eq!(with.gpu_s, without.gpu_s);
        assert!(with.gflops() < without.gflops_device());
        assert_eq!(with.flops, p.flops());
    }

    #[test]
    fn all_bounds_positive_on_all_archs() {
        let p = matmul_program(64);
        for arch in all_architectures() {
            let t = time_kernel(&kernel_with(&p, "k", 2), &arch);
            for v in [
                t.dp_pipe_s,
                t.issue_s,
                t.l2_s,
                t.dram_s,
                t.serial_s,
                t.launch_s,
            ] {
                assert!(v > 0.0 && v.is_finite());
            }
            assert!(t.time_s >= t.launch_s);
        }
    }

    #[test]
    fn staging_small_shared_input_helps() {
        // lg3-like statement where D is read by every thread of the block.
        use octopi::ast::{Contraction, TensorRef};
        use octopi::enumerate_factorizations;
        let mut dims = uniform_dims(&["i", "j", "k", "l"], 12);
        dims.insert("e".into(), 256);
        let c = Contraction {
            output: TensorRef::new("ur", &["e", "i", "j", "k"]),
            sum_indices: vec!["l".into()],
            terms: vec![
                TensorRef::new("D", &["i", "l"]),
                TensorRef::new("u", &["e", "l", "j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("lg3", &c, &fs[0], &dims);
        let base = OpConfig {
            tx: IndexVar::new("k"),
            ty: LoopSel::Var(IndexVar::new("j")),
            bx: LoopSel::Var(IndexVar::new("i")),
            by: LoopSel::Var(IndexVar::new("e")),
            interior: vec![IndexVar::new("l")],
            unroll: 1,
            staged: vec![],
        };
        let mut staged = base.clone();
        staged.staged = vec![0];
        let arch = gtx980();
        let t0 = time_kernel(&map_kernel(&p, 0, &base, false).unwrap(), &arch);
        let t1 = time_kernel(&map_kernel(&p, 0, &staged, false).unwrap(), &arch);
        // The win is latency: shared-memory reads replace L2 round trips in
        // the per-point critical path. (Traffic for a broadcast-friendly
        // reference is already cheap, so L2 bytes barely move.)
        assert!(
            t1.serial_s < t0.serial_s,
            "staging must shorten the latency floor: {} vs {}",
            t1.serial_s,
            t0.serial_s
        );
        assert!(t1.time_s <= t0.time_s * 1.05);
    }

    #[test]
    fn staging_costs_shared_memory_occupancy() {
        use crate::occupancy::occupancy;
        let p = matmul_program(16);
        let mut cfg = OpConfig {
            tx: IndexVar::new("k"),
            ty: LoopSel::One,
            bx: LoopSel::Var(IndexVar::new("i")),
            by: LoopSel::One,
            interior: vec![IndexVar::new("j")],
            unroll: 1,
            staged: vec![],
        };
        let arch = c2050();
        let k0 = map_kernel(&p, 0, &cfg, false).unwrap();
        cfg.staged = vec![0, 1];
        let k1 = map_kernel(&p, 0, &cfg, false).unwrap();
        assert!(k1.smem_bytes_per_block() > 0);
        let o0 = occupancy(&k0, &arch);
        let o1 = occupancy(&k1, &arch);
        assert!(o1.cap_blocks_per_sm <= o0.cap_blocks_per_sm);
    }

    #[test]
    fn gflops_bounded_by_peak() {
        let p = matmul_program(128);
        for arch in all_architectures() {
            let space = ProgramSpace::build(&p);
            let kernels =
                map_program(&p, &space, &Configuration { choice: vec![0] }, false).unwrap();
            let t = time_program(&p, &kernels, &arch, false);
            assert!(
                t.gflops_device() <= arch.peak_dp_gflops(),
                "{}: {} > peak {}",
                arch.name,
                t.gflops_device(),
                arch.peak_dp_gflops()
            );
        }
    }
}
