//! Architecture descriptors as data: a hand-rolled TOML subset, a canonical
//! serialization, and a content digest that makes plan-store addressing
//! self-invalidating.
//!
//! Every [`GpuArch`] field is representable in a flat `key = value` TOML
//! file (strings, integers, floats; `#` comments; any key order). Parsing
//! follows the same discipline as the repo's hand-rolled JSON module: a
//! small recursive-descent reader, typed errors, no external crates, and a
//! canonical writer whose output round-trips bit-losslessly (floats are
//! printed with Rust's shortest-roundtrip `Display` and re-read with the
//! correctly-rounded parser).
//!
//! [`ArchDescriptor::digest`] is FNV-1a over the canonical serialization —
//! *not* over the file text — so formatting, comments, and key order never
//! change the digest, while any change to any field value always does.
//! Backends derive their plan-store cache salt from this digest: editing a
//! descriptor therefore retires every plan tuned against the old numbers.

use crate::arch::GpuArch;
use std::fmt;
use std::path::Path;

/// A typed failure while reading or validating a descriptor file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DescriptorError {
    /// The file could not be read at all.
    Io { path: String, detail: String },
    /// A line did not lex as `key = value`, a comment, or a blank.
    Syntax { line: usize, detail: String },
    /// A field was unknown, duplicated, missing, or had a malformed value.
    Field { field: String, detail: String },
    /// The fields parsed but describe a machine the simulator rejects.
    Validate { field: String, detail: String },
}

impl fmt::Display for DescriptorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DescriptorError::Io { path, detail } => {
                write!(f, "cannot read descriptor {path}: {detail}")
            }
            DescriptorError::Syntax { line, detail } => {
                write!(f, "descriptor syntax error at line {line}: {detail}")
            }
            DescriptorError::Field { field, detail } => {
                write!(f, "descriptor field `{field}`: {detail}")
            }
            DescriptorError::Validate { field, detail } => {
                write!(f, "descriptor validation failed on `{field}`: {detail}")
            }
        }
    }
}

impl std::error::Error for DescriptorError {}

/// FNV-1a offset basis (also the fallback for the astronomically unlikely
/// zero digest — salt 0 is reserved for the shared feature memo).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte string, as used for cache salts everywhere else in
/// the workspace.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Invokes `$m!(field_name, Kind)` once per [`GpuArch`] field, in canonical
/// (struct-declaration) order. The single source of truth for the
/// descriptor schema: parser, serializer, and field list all expand from
/// this macro, so they cannot drift.
macro_rules! for_each_arch_field {
    ($m:ident) => {
        $m!(name, Str);
        $m!(key, Str);
        $m!(generation, Str);
        $m!(sm_count, U32);
        $m!(clock_ghz, F64);
        $m!(dp_flops_per_cycle_per_sm, F64);
        $m!(issue_lanes_per_cycle_per_sm, F64);
        $m!(mem_bw_gbs, F64);
        $m!(l2_bytes, U64);
        $m!(l2_bw_gbs, F64);
        $m!(smem_per_sm, U32);
        $m!(max_threads_per_sm, U32);
        $m!(max_blocks_per_sm, U32);
        $m!(max_warps_per_sm, U32);
        $m!(regs_per_sm, U32);
        $m!(warp_size, U32);
        $m!(transaction_bytes, U32);
        $m!(kernel_launch_us, F64);
        $m!(pcie_bw_gbs, F64);
        $m!(pcie_latency_us, F64);
        $m!(dp_latency_cycles, F64);
        $m!(l2_latency_cycles, F64);
        $m!(compile_seconds, F64);
    };
}

/// Every descriptor field name, in canonical order. Exposed so tests and
/// tooling can enumerate the schema without re-stating it.
pub const FIELD_NAMES: &[&str] = &[
    "name",
    "key",
    "generation",
    "sm_count",
    "clock_ghz",
    "dp_flops_per_cycle_per_sm",
    "issue_lanes_per_cycle_per_sm",
    "mem_bw_gbs",
    "l2_bytes",
    "l2_bw_gbs",
    "smem_per_sm",
    "max_threads_per_sm",
    "max_blocks_per_sm",
    "max_warps_per_sm",
    "regs_per_sm",
    "warp_size",
    "transaction_bytes",
    "kernel_launch_us",
    "pcie_bw_gbs",
    "pcie_latency_us",
    "dp_latency_cycles",
    "l2_latency_cycles",
    "compile_seconds",
];

/// A validated, canonically serializable view of one [`GpuArch`].
#[derive(Clone, Debug, PartialEq)]
pub struct ArchDescriptor {
    arch: GpuArch,
}

impl ArchDescriptor {
    /// Wraps an in-memory architecture without re-validating it (the three
    /// built-ins and programmatic callers are trusted).
    pub fn from_arch(arch: GpuArch) -> Self {
        ArchDescriptor { arch }
    }

    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    pub fn into_arch(self) -> GpuArch {
        self.arch
    }

    /// The registry key this descriptor answers to.
    pub fn key(&self) -> &str {
        &self.arch.key
    }

    /// Reads and parses a descriptor file from disk.
    pub fn load(path: &Path) -> Result<Self, DescriptorError> {
        let text = std::fs::read_to_string(path).map_err(|e| DescriptorError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        Self::parse_toml(&text)
    }

    /// Parses the TOML subset: blank lines, `#` comments (whole-line or
    /// trailing), and flat `key = value` pairs in any order. Unknown,
    /// duplicated, or missing keys are errors; so is trailing garbage.
    pub fn parse_toml(text: &str) -> Result<Self, DescriptorError> {
        #[derive(Default)]
        struct Slots {
            name: Option<String>,
            key: Option<String>,
            generation: Option<String>,
            sm_count: Option<u32>,
            clock_ghz: Option<f64>,
            dp_flops_per_cycle_per_sm: Option<f64>,
            issue_lanes_per_cycle_per_sm: Option<f64>,
            mem_bw_gbs: Option<f64>,
            l2_bytes: Option<u64>,
            l2_bw_gbs: Option<f64>,
            smem_per_sm: Option<u32>,
            max_threads_per_sm: Option<u32>,
            max_blocks_per_sm: Option<u32>,
            max_warps_per_sm: Option<u32>,
            regs_per_sm: Option<u32>,
            warp_size: Option<u32>,
            transaction_bytes: Option<u32>,
            kernel_launch_us: Option<f64>,
            pcie_bw_gbs: Option<f64>,
            pcie_latency_us: Option<f64>,
            dp_latency_cycles: Option<f64>,
            l2_latency_cycles: Option<f64>,
            compile_seconds: Option<f64>,
        }
        let mut slots = Slots::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let eq = line.find('=').ok_or_else(|| DescriptorError::Syntax {
                line: lineno,
                detail: "expected `key = value`".to_string(),
            })?;
            let key = line[..eq].trim();
            let rest = line[eq + 1..].trim_start();
            let mut matched = false;
            macro_rules! parse_into {
                ($f:ident, Str) => {
                    if !matched && key == stringify!($f) {
                        matched = true;
                        if slots.$f.is_some() {
                            return Err(dup_field(stringify!($f), lineno));
                        }
                        slots.$f = Some(parse_string(stringify!($f), rest)?);
                    }
                };
                ($f:ident, U32) => {
                    if !matched && key == stringify!($f) {
                        matched = true;
                        if slots.$f.is_some() {
                            return Err(dup_field(stringify!($f), lineno));
                        }
                        slots.$f = Some(parse_u32(stringify!($f), rest)?);
                    }
                };
                ($f:ident, U64) => {
                    if !matched && key == stringify!($f) {
                        matched = true;
                        if slots.$f.is_some() {
                            return Err(dup_field(stringify!($f), lineno));
                        }
                        slots.$f = Some(parse_u64(stringify!($f), rest)?);
                    }
                };
                ($f:ident, F64) => {
                    if !matched && key == stringify!($f) {
                        matched = true;
                        if slots.$f.is_some() {
                            return Err(dup_field(stringify!($f), lineno));
                        }
                        slots.$f = Some(parse_f64(stringify!($f), rest)?);
                    }
                };
            }
            for_each_arch_field!(parse_into);
            if !matched {
                return Err(DescriptorError::Field {
                    field: key.to_string(),
                    detail: format!("unknown field at line {lineno}"),
                });
            }
        }
        macro_rules! take {
            ($f:ident) => {
                slots.$f.ok_or_else(|| DescriptorError::Field {
                    field: stringify!($f).to_string(),
                    detail: "missing".to_string(),
                })?
            };
        }
        let arch = GpuArch {
            name: take!(name),
            key: take!(key),
            generation: take!(generation),
            sm_count: take!(sm_count),
            clock_ghz: take!(clock_ghz),
            dp_flops_per_cycle_per_sm: take!(dp_flops_per_cycle_per_sm),
            issue_lanes_per_cycle_per_sm: take!(issue_lanes_per_cycle_per_sm),
            mem_bw_gbs: take!(mem_bw_gbs),
            l2_bytes: take!(l2_bytes),
            l2_bw_gbs: take!(l2_bw_gbs),
            smem_per_sm: take!(smem_per_sm),
            max_threads_per_sm: take!(max_threads_per_sm),
            max_blocks_per_sm: take!(max_blocks_per_sm),
            max_warps_per_sm: take!(max_warps_per_sm),
            regs_per_sm: take!(regs_per_sm),
            warp_size: take!(warp_size),
            transaction_bytes: take!(transaction_bytes),
            kernel_launch_us: take!(kernel_launch_us),
            pcie_bw_gbs: take!(pcie_bw_gbs),
            pcie_latency_us: take!(pcie_latency_us),
            dp_latency_cycles: take!(dp_latency_cycles),
            l2_latency_cycles: take!(l2_latency_cycles),
            compile_seconds: take!(compile_seconds),
        };
        validate(&arch)?;
        Ok(ArchDescriptor { arch })
    }

    /// The canonical serialization: every field in declaration order, one
    /// `key = value` per line, strings quoted/escaped, floats printed with
    /// shortest-roundtrip `Display`. Parsing this text reproduces the
    /// descriptor bit-for-bit.
    pub fn canonical_toml(&self) -> String {
        let a = &self.arch;
        let mut s = String::new();
        macro_rules! emit {
            ($f:ident, Str) => {
                s.push_str(stringify!($f));
                s.push_str(" = ");
                quote_into(&mut s, &a.$f);
                s.push('\n');
            };
            ($f:ident, U32) => {
                s.push_str(&format!("{} = {}\n", stringify!($f), a.$f));
            };
            ($f:ident, U64) => {
                s.push_str(&format!("{} = {}\n", stringify!($f), a.$f));
            };
            ($f:ident, F64) => {
                s.push_str(&format!("{} = {}\n", stringify!($f), a.$f));
            };
        }
        for_each_arch_field!(emit);
        s
    }

    /// Content digest: FNV-1a over [`Self::canonical_toml`]. Two
    /// descriptors share a digest iff every field is bit-identical;
    /// whitespace, comments, and key order in the source file are
    /// irrelevant. Never 0 (reserved for the shared feature memo).
    pub fn digest(&self) -> u64 {
        match fnv1a(self.canonical_toml().as_bytes()) {
            0 => FNV_OFFSET,
            h => h,
        }
    }
}

fn dup_field(field: &str, line: usize) -> DescriptorError {
    DescriptorError::Field {
        field: field.to_string(),
        detail: format!("duplicate at line {line}"),
    }
}

/// After a value token, only whitespace or a trailing comment may remain.
fn ensure_tail(field: &str, tail: &str) -> Result<(), DescriptorError> {
    let t = tail.trim_start();
    if t.is_empty() || t.starts_with('#') {
        Ok(())
    } else {
        Err(DescriptorError::Field {
            field: field.to_string(),
            detail: format!("trailing garbage after value: `{t}`"),
        })
    }
}

/// Parses a quoted TOML basic string with `\" \\ \n \t \r` escapes.
fn parse_string(field: &str, rest: &str) -> Result<String, DescriptorError> {
    let bad = |detail: &str| DescriptorError::Field {
        field: field.to_string(),
        detail: detail.to_string(),
    };
    let mut chars = rest.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(bad("expected a quoted string")),
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            match c {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                other => return Err(bad(&format!("unsupported escape `\\{other}`"))),
            }
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            ensure_tail(field, &rest[i + 1..])?;
            return Ok(out);
        } else {
            out.push(c);
        }
    }
    Err(bad("unterminated string"))
}

/// Splits the bare (unquoted) value token off `rest` and checks the tail.
fn bare_token<'a>(field: &str, rest: &'a str) -> Result<&'a str, DescriptorError> {
    let end = rest
        .find(|c: char| c.is_whitespace() || c == '#')
        .unwrap_or(rest.len());
    let tok = &rest[..end];
    if tok.is_empty() {
        return Err(DescriptorError::Field {
            field: field.to_string(),
            detail: "missing value".to_string(),
        });
    }
    ensure_tail(field, &rest[end..])?;
    Ok(tok)
}

fn parse_u64(field: &str, rest: &str) -> Result<u64, DescriptorError> {
    let tok = bare_token(field, rest)?.replace('_', "");
    tok.parse::<u64>().map_err(|_| DescriptorError::Field {
        field: field.to_string(),
        detail: format!("expected an unsigned integer, got `{tok}`"),
    })
}

fn parse_u32(field: &str, rest: &str) -> Result<u32, DescriptorError> {
    let v = parse_u64(field, rest)?;
    u32::try_from(v).map_err(|_| DescriptorError::Field {
        field: field.to_string(),
        detail: format!("{v} does not fit in 32 bits"),
    })
}

fn parse_f64(field: &str, rest: &str) -> Result<f64, DescriptorError> {
    let tok = bare_token(field, rest)?.replace('_', "");
    // Rust's f64 parser is correctly rounded, so together with the
    // shortest-roundtrip Display used by the canonical writer the text
    // form is bit-lossless. `inf`/`nan` are rejected by validation.
    tok.parse::<f64>().map_err(|_| DescriptorError::Field {
        field: field.to_string(),
        detail: format!("expected a number, got `{tok}`"),
    })
}

/// Appends a TOML basic-string rendering of `v`.
fn quote_into(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
}

/// Physical sanity: strings non-empty, the key filename/CLI-safe, every
/// numeric quantity finite and strictly positive. Deliberately loose —
/// descriptors describe hypothetical machines too.
fn validate(arch: &GpuArch) -> Result<(), DescriptorError> {
    let err = |field: &str, detail: String| {
        Err(DescriptorError::Validate {
            field: field.to_string(),
            detail,
        })
    };
    if arch.name.is_empty() {
        return err("name", "must be non-empty".to_string());
    }
    if arch.generation.is_empty() {
        return err("generation", "must be non-empty".to_string());
    }
    if arch.key.is_empty() {
        return err("key", "must be non-empty".to_string());
    }
    if !arch
        .key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return err(
            "key",
            format!("`{}` may only contain [A-Za-z0-9._-]", arch.key),
        );
    }
    macro_rules! check {
        ($f:ident, Str) => {};
        ($f:ident, U32) => {
            if arch.$f == 0 {
                return err(stringify!($f), "must be positive".to_string());
            }
        };
        ($f:ident, U64) => {
            if arch.$f == 0 {
                return err(stringify!($f), "must be positive".to_string());
            }
        };
        ($f:ident, F64) => {
            if !(arch.$f.is_finite() && arch.$f > 0.0) {
                return err(
                    stringify!($f),
                    format!("must be finite and positive, got {}", arch.$f),
                );
            }
        };
    }
    for_each_arch_field!(check);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::k20;

    #[test]
    fn canonical_form_roundtrips_bit_exactly() {
        let d = ArchDescriptor::from_arch(k20());
        let text = d.canonical_toml();
        let back = ArchDescriptor::parse_toml(&text).unwrap();
        assert_eq!(d, back);
        assert_eq!(text, back.canonical_toml());
        assert_eq!(d.digest(), back.digest());
    }

    #[test]
    fn canonical_field_order_matches_schema() {
        let text = ArchDescriptor::from_arch(k20()).canonical_toml();
        let keys: Vec<&str> = text
            .lines()
            .map(|l| l.split('=').next().unwrap().trim())
            .collect();
        assert_eq!(keys, FIELD_NAMES);
    }

    #[test]
    fn comments_whitespace_and_key_order_do_not_change_the_digest() {
        let d = ArchDescriptor::from_arch(k20());
        let canonical = d.canonical_toml();
        let mut lines: Vec<&str> = canonical.lines().collect();
        lines.reverse();
        let mut scrambled = String::from("# a leading comment\n\n");
        for l in lines {
            scrambled.push_str("  ");
            scrambled.push_str(l);
            scrambled.push_str("   # trailing note\n\n");
        }
        let back = ArchDescriptor::parse_toml(&scrambled).unwrap();
        assert_eq!(back.digest(), d.digest());
        assert_eq!(back, d);
    }

    #[test]
    fn unknown_duplicate_missing_fields_are_typed_errors() {
        let d = ArchDescriptor::from_arch(k20());
        let canonical = d.canonical_toml();
        let unknown = format!("{canonical}bogus = 1\n");
        assert!(matches!(
            ArchDescriptor::parse_toml(&unknown),
            Err(DescriptorError::Field { ref field, .. }) if field == "bogus"
        ));
        let dup = format!("{canonical}sm_count = 13\n");
        assert!(matches!(
            ArchDescriptor::parse_toml(&dup),
            Err(DescriptorError::Field { ref field, .. }) if field == "sm_count"
        ));
        let missing: String = canonical.lines().skip(1).fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
        assert!(matches!(
            ArchDescriptor::parse_toml(&missing),
            Err(DescriptorError::Field { ref field, .. }) if field == "name"
        ));
    }

    #[test]
    fn validation_rejects_nonphysical_machines() {
        let canonical = ArchDescriptor::from_arch(k20()).canonical_toml();
        let zero_clock = canonical.replace("clock_ghz = 0.706", "clock_ghz = 0");
        assert!(matches!(
            ArchDescriptor::parse_toml(&zero_clock),
            Err(DescriptorError::Validate { ref field, .. }) if field == "clock_ghz"
        ));
        let bad_key = canonical.replace("key = \"k20\"", "key = \"k 20\"");
        assert!(matches!(
            ArchDescriptor::parse_toml(&bad_key),
            Err(DescriptorError::Validate { ref field, .. }) if field == "key"
        ));
    }

    #[test]
    fn digest_is_never_the_feature_memo_salt() {
        assert_ne!(ArchDescriptor::from_arch(k20()).digest(), 0);
    }
}
