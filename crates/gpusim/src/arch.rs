//! Architecture descriptors for the three GPUs of the paper's evaluation.
//!
//! Numbers are public data-sheet figures with effective (not peak) memory
//! bandwidths — ECC overhead on the Tesla parts and typical achievable
//! fractions are folded in. The simulator's conclusions depend on the
//! *relations* between these quantities (wide-but-slow Fermi DP vs.
//! thin-but-fast Maxwell DP, launch overheads shrinking by generation), not
//! on their absolute accuracy.
//!
//! The built-ins are *data*, not code: each ships as a TOML descriptor
//! embedded at compile time (`descriptors/*.toml`) and is parsed once, on
//! first use, through the same [`crate::descriptor`] path that loads
//! user-supplied architecture files. Adding a new GPU generation therefore
//! needs no rebuild — write a descriptor file and point the CLI at it.

use crate::descriptor::ArchDescriptor;
use std::sync::OnceLock;

/// A simulated GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct GpuArch {
    pub name: String,
    /// Short machine-readable registry key (`gtx980`, `k20`, `c2050`) used
    /// by `--arch`/`--backend` lookups and cache salting.
    pub key: String,
    /// Marketing generation, e.g. "Fermi".
    pub generation: String,
    pub sm_count: u32,
    pub clock_ghz: f64,
    /// Double-precision flops per cycle per SM (an FMA counts as 2).
    pub dp_flops_per_cycle_per_sm: f64,
    /// Lane-instructions (warp-instruction × 32) issuable per cycle per SM.
    pub issue_lanes_per_cycle_per_sm: f64,
    /// Effective DRAM bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Effective L2 bandwidth in GB/s.
    pub l2_bw_gbs: f64,
    /// Shared memory per SM, bytes.
    pub smem_per_sm: u32,
    pub max_threads_per_sm: u32,
    pub max_blocks_per_sm: u32,
    pub max_warps_per_sm: u32,
    pub regs_per_sm: u32,
    pub warp_size: u32,
    /// Global-memory transaction size in bytes.
    pub transaction_bytes: u32,
    /// Fixed host-side cost of launching one kernel, microseconds.
    pub kernel_launch_us: f64,
    /// Effective host↔device bandwidth, GB/s.
    pub pcie_bw_gbs: f64,
    /// Per-transfer latency, microseconds.
    pub pcie_latency_us: f64,
    /// Dependent double-precision FMA latency in cycles.
    pub dp_latency_cycles: f64,
    /// L2 hit latency in cycles (used for the serial-chain floor).
    pub l2_latency_cycles: f64,
    /// Modeled `nvcc` compile time per variant in seconds — used only to
    /// account autotuning search time the way the paper reports it.
    pub compile_seconds: f64,
}

impl GpuArch {
    /// Peak double-precision GFlop/s.
    pub fn peak_dp_gflops(&self) -> f64 {
        self.sm_count as f64 * self.clock_ghz * self.dp_flops_per_cycle_per_sm
    }
}

/// The embedded built-in descriptors, newest first (the paper's column
/// order). Exposed so callers can show users what a descriptor file looks
/// like without shipping extra files.
pub const BUILTIN_DESCRIPTOR_TOML: &[(&str, &str)] = &[
    ("gtx980", include_str!("../descriptors/gtx980.toml")),
    ("k20", include_str!("../descriptors/k20.toml")),
    ("c2050", include_str!("../descriptors/c2050.toml")),
];

/// Parsed once on first use; every accessor below clones out of this slab
/// instead of re-constructing (or re-parsing) per call.
fn builtins() -> &'static Vec<GpuArch> {
    static CELL: OnceLock<Vec<GpuArch>> = OnceLock::new();
    CELL.get_or_init(|| {
        BUILTIN_DESCRIPTOR_TOML
            .iter()
            .map(|(key, text)| match ArchDescriptor::parse_toml(text) {
                Ok(d) => {
                    // The embedded file must agree with its registry slot.
                    assert_eq!(d.key(), *key, "embedded descriptor key mismatch");
                    d.into_arch()
                }
                Err(e) => panic!("embedded descriptor `{key}` is invalid: {e}"),
            })
            .collect()
    })
}

/// Tesla C2050 (Fermi, GF100): wide DP (1/2 of SP), modest clocks, ECC DRAM.
pub fn c2050() -> GpuArch {
    builtins()[2].clone()
}

/// Tesla K20 (Kepler, GK110): many thin cores, high DP peak, ECC DRAM.
pub fn k20() -> GpuArch {
    builtins()[1].clone()
}

/// GTX 980 (Maxwell, GM204): consumer part, DP = 1/32 of SP, fast launches.
pub fn gtx980() -> GpuArch {
    builtins()[0].clone()
}

/// All three architectures, newest first (the paper's column order).
pub fn all_architectures() -> Vec<GpuArch> {
    builtins().clone()
}

/// Looks an architecture up by its registry key (`gtx980`, `k20`, `c2050`)
/// without rebuilding the registry: one clone on hit, no allocation on miss.
pub fn arch_by_key(key: &str) -> Option<GpuArch> {
    builtins().iter().find(|a| a.key == key).cloned()
}

/// The registry keys of every built-in architecture, in registry order.
pub fn arch_keys() -> Vec<&'static str> {
    builtins().iter().map(|a| a.key.as_str()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_dp_matches_datasheets() {
        // C2050: 515 GF, K20: ~1174 GF, GTX 980: ~144 GF.
        assert!((c2050().peak_dp_gflops() - 515.2).abs() < 1.0);
        assert!((k20().peak_dp_gflops() - 1174.8).abs() < 2.0);
        assert!((gtx980().peak_dp_gflops() - 144.1).abs() < 1.0);
    }

    #[test]
    fn generations_ordered_by_launch_cost() {
        // Newer generations have cheaper kernel launches.
        assert!(gtx980().kernel_launch_us < k20().kernel_launch_us);
        assert!(k20().kernel_launch_us < c2050().kernel_launch_us);
    }

    #[test]
    fn all_architectures_distinct() {
        let archs = all_architectures();
        assert_eq!(archs.len(), 3);
        assert_ne!(archs[0].name, archs[1].name);
        assert_ne!(archs[1].name, archs[2].name);
    }

    #[test]
    fn lookup_and_keys_agree_with_the_slab() {
        assert_eq!(arch_keys(), vec!["gtx980", "k20", "c2050"]);
        for key in arch_keys() {
            assert_eq!(arch_by_key(key).map(|a| a.key), Some(key.to_string()));
        }
        assert!(arch_by_key("tpu").is_none());
    }

    /// Golden equivalence: the descriptor-parsed built-ins must be
    /// field-for-field (and hence bit-for-bit for every float) identical to
    /// the hard-coded constructors this module had before the descriptor
    /// refactor. If a TOML edit drifts a value, this test names it.
    #[test]
    fn builtins_match_the_pre_descriptor_literals() {
        let golden_c2050 = GpuArch {
            name: "Tesla C2050".to_string(),
            key: "c2050".to_string(),
            generation: "Fermi".to_string(),
            sm_count: 14,
            clock_ghz: 1.15,
            dp_flops_per_cycle_per_sm: 32.0,
            issue_lanes_per_cycle_per_sm: 48.0,
            mem_bw_gbs: 105.0,
            l2_bytes: 768 << 10,
            l2_bw_gbs: 230.0,
            smem_per_sm: 48 << 10,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 48,
            regs_per_sm: 32 << 10,
            warp_size: 32,
            transaction_bytes: 128,
            kernel_launch_us: 9.0,
            pcie_bw_gbs: 5.5,
            pcie_latency_us: 16.0,
            dp_latency_cycles: 18.0,
            l2_latency_cycles: 240.0,
            compile_seconds: 5.2,
        };
        let golden_k20 = GpuArch {
            name: "Tesla K20".to_string(),
            key: "k20".to_string(),
            generation: "Kepler".to_string(),
            sm_count: 13,
            clock_ghz: 0.706,
            dp_flops_per_cycle_per_sm: 128.0,
            issue_lanes_per_cycle_per_sm: 160.0,
            mem_bw_gbs: 150.0,
            l2_bytes: 1280 << 10,
            l2_bw_gbs: 350.0,
            smem_per_sm: 48 << 10,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_warps_per_sm: 64,
            regs_per_sm: 64 << 10,
            warp_size: 32,
            transaction_bytes: 128,
            kernel_launch_us: 7.0,
            pcie_bw_gbs: 5.5,
            pcie_latency_us: 14.0,
            dp_latency_cycles: 24.0,
            l2_latency_cycles: 220.0,
            compile_seconds: 7.6,
        };
        let golden_gtx980 = GpuArch {
            name: "GTX 980".to_string(),
            key: "gtx980".to_string(),
            generation: "Maxwell".to_string(),
            sm_count: 16,
            clock_ghz: 1.126,
            dp_flops_per_cycle_per_sm: 8.0,
            issue_lanes_per_cycle_per_sm: 128.0,
            mem_bw_gbs: 180.0,
            l2_bytes: 2 << 20,
            l2_bw_gbs: 450.0,
            smem_per_sm: 96 << 10,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_warps_per_sm: 64,
            regs_per_sm: 64 << 10,
            warp_size: 32,
            transaction_bytes: 128,
            kernel_launch_us: 4.0,
            pcie_bw_gbs: 11.0,
            pcie_latency_us: 10.0,
            dp_latency_cycles: 16.0,
            l2_latency_cycles: 200.0,
            compile_seconds: 3.2,
        };
        assert_eq!(c2050(), golden_c2050);
        assert_eq!(k20(), golden_k20);
        assert_eq!(gtx980(), golden_gtx980);
        // Bit-level float identity, not just PartialEq.
        for (a, b) in [
            (c2050(), golden_c2050),
            (k20(), golden_k20),
            (gtx980(), golden_gtx980),
        ] {
            assert_eq!(a.clock_ghz.to_bits(), b.clock_ghz.to_bits());
            assert_eq!(a.mem_bw_gbs.to_bits(), b.mem_bw_gbs.to_bits());
            assert_eq!(a.kernel_launch_us.to_bits(), b.kernel_launch_us.to_bits());
            assert_eq!(a.compile_seconds.to_bits(), b.compile_seconds.to_bits());
        }
    }
}
