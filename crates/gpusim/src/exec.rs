//! Functional executor: interprets a mapped kernel exactly as a GPU would,
//! block by block and thread by thread.
//!
//! This is the correctness half of the simulator. It shares no code with the
//! reference einsum evaluator, so agreement between the two is meaningful
//! evidence that a transformation is semantics-preserving.

use tcr::mapping::MappedKernel;
use tcr::program::{ArrayKind, TcrProgram};
use tensor::Tensor;

/// Executes one kernel over its whole grid. `buffers[i]` is the storage of
/// array id `i`; the output buffer is updated in place (accumulating — the
/// caller zero-fills fresh temporaries, matching `cudaMemset` before launch).
pub fn execute_kernel(kernel: &MappedKernel, buffers: &mut [Vec<f64>]) {
    for acc in &kernel.inputs {
        assert_ne!(
            acc.array, kernel.output.array,
            "statement reads and writes the same array"
        );
        assert_eq!(buffers[acc.array].len(), acc.len, "input buffer size");
    }
    assert_eq!(
        buffers[kernel.output.array].len(),
        kernel.output.len,
        "output buffer size"
    );

    // Take the output buffer out so inputs can be borrowed immutably.
    let mut out = std::mem::take(&mut buffers[kernel.output.array]);
    {
        let ins: Vec<&[f64]> = kernel
            .inputs
            .iter()
            .map(|a| buffers[a.array].as_slice())
            .collect();

        // Strides of each access w.r.t. the mapped dims and interior loops.
        let n_int = kernel.interior.len();
        let stride_vec =
            |acc: &tcr::mapping::ArrayAccess| -> (usize, usize, usize, usize, Vec<usize>) {
                let tx = acc.stride_of(&kernel.tx.0);
                let ty = kernel
                    .ty
                    .as_ref()
                    .map(|(v, _)| acc.stride_of(v))
                    .unwrap_or(0);
                let bx = kernel
                    .bx
                    .as_ref()
                    .map(|(v, _)| acc.stride_of(v))
                    .unwrap_or(0);
                let by = kernel
                    .by
                    .as_ref()
                    .map(|(v, _)| acc.stride_of(v))
                    .unwrap_or(0);
                let ints = kernel
                    .interior
                    .iter()
                    .map(|l| acc.stride_of(&l.var))
                    .collect();
                (tx, ty, bx, by, ints)
            };
        let out_s = stride_vec(&kernel.output);
        let in_s: Vec<_> = kernel.inputs.iter().map(stride_vec).collect();

        let (bdx, bdy) = kernel.block();
        let (gdx, gdy) = kernel.grid();
        let extents: Vec<usize> = kernel.interior.iter().map(|l| l.extent).collect();
        let trip: usize = extents.iter().product();

        let mut idx = vec![0usize; n_int];
        for by_v in 0..gdy {
            for bx_v in 0..gdx {
                for ty_v in 0..bdy {
                    for tx_v in 0..bdx {
                        let base = |s: &(usize, usize, usize, usize, Vec<usize>)| {
                            tx_v * s.0 + ty_v * s.1 + bx_v * s.2 + by_v * s.3
                        };
                        let out_base = base(&out_s);
                        // Odometer over the interior loops.
                        idx.iter_mut().for_each(|v| *v = 0);
                        for _ in 0..trip {
                            let mut prod = kernel.coefficient;
                            for (k, inp) in ins.iter().enumerate() {
                                let s = &in_s[k];
                                let mut a = base(s);
                                for (d, &iv) in idx.iter().enumerate() {
                                    a += iv * s.4[d];
                                }
                                prod *= inp[a];
                            }
                            let mut oa = out_base;
                            for (d, &iv) in idx.iter().enumerate() {
                                oa += iv * out_s.4[d];
                            }
                            out[oa] += prod;
                            // Advance odometer (row-major, innermost last).
                            for d in (0..n_int).rev() {
                                idx[d] += 1;
                                if idx[d] < extents[d] {
                                    break;
                                }
                                idx[d] = 0;
                            }
                        }
                    }
                }
            }
        }
    }
    buffers[kernel.output.array] = out;
}

/// Executes a whole mapped program: allocates buffers, uploads inputs, runs
/// every kernel (temporaries stay "device-resident"), returns the output
/// tensor. `inputs[k]` corresponds to `program.input_ids()[k]`.
pub fn execute_program(
    program: &TcrProgram,
    kernels: &[MappedKernel],
    inputs: &[&Tensor],
) -> Tensor {
    let input_ids = program.input_ids();
    assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
    let mut buffers: Vec<Vec<f64>> = program
        .arrays
        .iter()
        .map(|a| vec![0.0; a.len(&program.dims)])
        .collect();
    for (k, id) in input_ids.iter().enumerate() {
        assert_eq!(
            inputs[k].shape(),
            &program.arrays[*id].shape(&program.dims),
            "input {k} shape mismatch"
        );
        buffers[*id].copy_from_slice(inputs[k].data());
    }
    for kernel in kernels {
        execute_kernel(kernel, &mut buffers);
    }
    let out_id = program.output_id();
    let shape = program.arrays[out_id].shape(&program.dims);
    debug_assert_eq!(
        program.arrays[out_id].kind,
        ArrayKind::Output,
        "output id resolves to the Output array"
    );
    Tensor::from_vec(shape, std::mem::take(&mut buffers[out_id]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tcr::mapping::map_program;
    use tcr::space::ProgramSpace;
    use tensor::index::uniform_dims;
    use tensor::Shape;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    /// Every mapped configuration of the matmul statement must produce the
    /// reference result: this is the core transformation-correctness gate.
    #[test]
    fn all_matmul_configs_execute_correctly() {
        let n = 6;
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims);
        let space = ProgramSpace::build(&p);
        let a = Tensor::random(Shape::new([n, n]), 41);
        let b = Tensor::random(Shape::new([n, n]), 42);
        let expect = p.evaluate(&[&a, &b]);
        for (ci, _) in space.per_op[0].configs.iter().enumerate() {
            let cfg = tcr::space::Configuration { choice: vec![ci] };
            let kernels = map_program(&p, &space, &cfg, false).unwrap();
            let got = execute_program(&p, &kernels, &[&a, &b]);
            assert!(
                expect.approx_eq(&got, 1e-10),
                "config {ci} produced a wrong result"
            );
        }
    }

    #[test]
    fn eqn1_sampled_configs_execute_correctly() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1();
        let fs = enumerate_factorizations(&c, &dims);
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let cc = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        // Exercise a spread of factorizations and configurations.
        for f in fs.iter().step_by(4) {
            let p = tcr::TcrProgram::from_factorization("ex", &c, f, &dims);
            let expect = p.evaluate(&[&a, &b, &cc, &u]);
            let space = ProgramSpace::build(&p);
            let total = space.len();
            for frac in [0u128, 1, 2, 5] {
                let id = total * frac / 7;
                let cfg = space.config(id);
                let kernels = map_program(&p, &space, &cfg, false).unwrap();
                let got = execute_program(&p, &kernels, &[&a, &b, &cc, &u]);
                assert!(
                    expect.approx_eq(&got, 1e-10),
                    "factorization {} config {id} wrong",
                    f.key
                );
            }
        }
    }

    #[test]
    fn accumulate_adds_to_existing_output() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: true,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims);
        let space = ProgramSpace::build(&p);
        let cfg = space.config(0);
        let kernels = map_program(&p, &space, &cfg, true).unwrap();
        let a = Tensor::random(Shape::new([n, n]), 7);
        let b = Tensor::random(Shape::new([n, n]), 8);

        // Run the kernel twice over the same buffers: result must be 2x.
        let mut buffers: Vec<Vec<f64>> =
            p.arrays.iter().map(|d| vec![0.0; d.len(&p.dims)]).collect();
        let ids = p.input_ids();
        buffers[ids[0]].copy_from_slice(a.data());
        buffers[ids[1]].copy_from_slice(b.data());
        for k in &kernels {
            execute_kernel(k, &mut buffers);
        }
        for k in &kernels {
            execute_kernel(k, &mut buffers);
        }
        let once = p.evaluate(&[&a, &b]);
        let out = Tensor::from_vec(
            p.arrays[p.output_id()].shape(&p.dims),
            buffers[p.output_id()].clone(),
        );
        let mut doubled = once.clone();
        for v in doubled.data_mut() {
            *v *= 2.0;
        }
        assert!(out.approx_eq(&doubled, 1e-10));
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn wrong_input_count_panics() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &space.config(0), false).unwrap();
        let a = Tensor::random(Shape::new([n, n]), 7);
        let _ = execute_program(&p, &kernels, &[&a]);
    }
}
