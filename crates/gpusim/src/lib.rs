//! Deterministic GPU simulator for mapped tensor-contraction kernels.
//!
//! The paper evaluates on three physical NVIDIA GPUs. This crate substitutes
//! a *mechanistic performance model* plus a *functional executor*:
//!
//! - [`exec`] interprets a [`tcr::MappedKernel`] block-by-block and
//!   thread-by-thread, producing bit-exact results that are validated
//!   against the reference einsum evaluator — this is how we know every
//!   transformation in the search space is semantics-preserving.
//! - [`coalesce`] counts 128-byte global-memory transactions per warp for
//!   every array reference, which is exactly the quantity the paper's
//!   ThreadX/contiguous-tensor rules are designed to optimize.
//! - [`occupancy`] applies the standard CUDA occupancy calculation
//!   (threads/blocks/registers per SM).
//! - [`timing`] combines both with per-architecture rooflines (DP pipe,
//!   instruction issue, L2 and DRAM bandwidth, latency floors, kernel-launch
//!   and PCIe overheads) into a deterministic execution-time estimate.
//!
//! Because every component responds mechanistically to the same knobs the
//! autotuner searches over (decomposition, loop order, unroll, coalescing),
//! the *relative ordering* of code variants — which the paper's conclusions
//! rest on — is preserved even though absolute times are synthetic.

pub mod arch;
pub mod coalesce;
pub mod descriptor;
pub mod exec;
pub mod fused;
pub mod occupancy;
pub mod timing;

pub use arch::{all_architectures, arch_by_key, arch_keys, c2050, gtx980, k20, GpuArch};
pub use descriptor::{ArchDescriptor, DescriptorError};
pub use exec::{execute_kernel, execute_program};
pub use fused::{execute_fused_program, time_fused, FusedTiming};
pub use timing::{
    kernel_time_s, time_kernel, time_program, validate_kernel, KernelTiming, ProgramTiming,
};
