//! Global-memory coalescing: transactions-per-warp estimation.
//!
//! For each array reference the simulator computes, for representative
//! warps, the set of distinct memory transactions (aligned
//! `transaction_bytes` segments) touched by the 32 lanes of one load/store
//! instruction. Fully coalesced unit-stride access costs 2 transactions of
//! 128 bytes for 32 doubles; a stride-N walk costs up to 32.

use crate::arch::GpuArch;
use tcr::mapping::{ArrayAccess, MappedKernel};

/// Average transactions issued per warp per memory instruction for `acc`.
///
/// Samples every warp of the first block and a handful of interior-loop
/// offsets; addresses shift by constants across blocks, so the per-warp
/// segment count is representative of the whole grid.
pub fn transactions_per_warp(kernel: &MappedKernel, acc: &ArrayAccess, arch: &GpuArch) -> f64 {
    let (bdx, bdy) = kernel.block();
    let threads = bdx * bdy;
    let warp = arch.warp_size as usize;
    let elem_bytes = 8usize;
    let tseg = arch.transaction_bytes as usize;

    let s_tx = acc.stride_of(&kernel.tx.0);
    let s_ty = kernel
        .ty
        .as_ref()
        .map(|(v, _)| acc.stride_of(v))
        .unwrap_or(0);

    // Interior offsets to sample: the first few iterations of the innermost
    // varying loop shift the base address and can change segment alignment.
    let inner_strides: Vec<usize> = kernel
        .interior
        .iter()
        .map(|l| acc.stride_of(&l.var))
        .collect();
    let sample_offsets: Vec<usize> = {
        let mut offs = vec![0usize];
        if let Some((d, _)) = inner_strides
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &s)| s != 0)
        {
            let stride = inner_strides[d];
            let extent = kernel.interior[d].extent;
            for i in 1..extent.min(4) {
                offs.push(i * stride);
            }
        }
        offs
    };

    let n_warps = threads.div_ceil(warp);
    let mut total_txn = 0usize;
    let mut n_samples = 0usize;
    let mut segments: Vec<usize> = Vec::with_capacity(warp);
    for &off in &sample_offsets {
        for w in 0..n_warps {
            segments.clear();
            for lane in 0..warp {
                let t = w * warp + lane;
                if t >= threads {
                    break;
                }
                let tx_v = t % bdx;
                let ty_v = t / bdx;
                let addr_elems = tx_v * s_tx + ty_v * s_ty + off;
                let seg = addr_elems * elem_bytes / tseg;
                if !segments.contains(&seg) {
                    segments.push(seg);
                }
            }
            total_txn += segments.len();
            n_samples += 1;
        }
    }
    total_txn as f64 / n_samples as f64
}

/// Temporal-locality factor of a reference: when the innermost interior
/// loop the reference varies with strides less than a transaction, the
/// successive iterations of one thread hit the same line and are served by
/// the L1/read-only cache instead of re-requesting L2. A unit-stride
/// summation loop (NWChem d1's `v2[... h7]`) therefore costs ~1/16th of the
/// traffic of a large-stride one (d2's `v2[p7 ...]`).
pub fn temporal_factor(kernel: &MappedKernel, acc: &ArrayAccess, arch: &GpuArch) -> f64 {
    let elem_bytes = 8.0;
    let tseg = arch.transaction_bytes as f64;
    for l in kernel.interior.iter().rev() {
        let stride = acc.stride_of(&l.var);
        if stride != 0 {
            return ((stride as f64 * elem_bytes) / tseg).clamp(elem_bytes / tseg, 1.0);
        }
    }
    1.0
}

/// Memory traffic of one kernel, aggregated per referenced array.
#[derive(Clone, Debug, Default)]
pub struct TrafficSummary {
    /// Total transactions between SMs and L2 (both directions).
    pub l2_transactions: f64,
    /// Bytes moved between SMs and L2.
    pub l2_bytes: f64,
    /// Footprint (bytes) of every distinct array referenced.
    pub footprint_bytes: f64,
    /// Per-warp transaction count of the worst (least coalesced) reference.
    pub worst_txn_per_warp: f64,
}

/// Computes the kernel's global-memory traffic.
pub fn kernel_traffic(kernel: &MappedKernel, arch: &GpuArch) -> TrafficSummary {
    let warp = arch.warp_size as f64;
    let (bdx, bdy) = kernel.block();
    let threads_per_block = (bdx * bdy) as f64;
    let warps_per_block = (threads_per_block / warp).ceil();
    let total_warps = warps_per_block * kernel.num_blocks() as f64;

    let mut summary = TrafficSummary::default();
    let mut seen_arrays: Vec<usize> = Vec::new();

    let account = |summary: &mut TrafficSummary,
                   seen: &mut Vec<usize>,
                   acc: &ArrayAccess,
                   txns: f64,
                   txn_per_warp: f64| {
        summary.l2_transactions += txns;
        summary.l2_bytes += txns * arch.transaction_bytes as f64;
        summary.worst_txn_per_warp = summary.worst_txn_per_warp.max(txn_per_warp);
        if !seen.contains(&acc.array) {
            seen.push(acc.array);
            summary.footprint_bytes += (acc.len * 8) as f64;
        }
    };

    for (k, acc) in kernel.inputs.iter().enumerate() {
        if kernel.is_staged(k) {
            // Cooperative staging: the whole array streams into shared
            // memory once per block, fully coalesced; subsequent accesses
            // are shared-memory reads that never touch L2.
            let txns = kernel.num_blocks() as f64
                * (acc.len as f64 * 8.0 / arch.transaction_bytes as f64).ceil();
            account(&mut summary, &mut seen_arrays, acc, txns, 2.0);
            continue;
        }
        let txn_per_warp = transactions_per_warp(kernel, acc, arch);
        let locality = temporal_factor(kernel, acc, arch);
        let instr = kernel.input_loads_per_thread(k) as f64;
        account(
            &mut summary,
            &mut seen_arrays,
            acc,
            total_warps * instr * txn_per_warp * locality,
            txn_per_warp,
        );
    }
    let stores = kernel.output_stores_per_thread() as f64;
    let out_loads = if kernel.output_fully_registered() {
        if kernel.accumulate {
            1.0
        } else {
            0.0
        }
    } else {
        stores
    };
    let out = &kernel.output;
    let txn_per_warp = transactions_per_warp(kernel, out, arch);
    let locality = temporal_factor(kernel, out, arch);
    account(
        &mut summary,
        &mut seen_arrays,
        out,
        total_warps * (stores + out_loads) * txn_per_warp * locality,
        txn_per_warp,
    );
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::gtx980;
    use octopi::ast::{Contraction, TensorRef};
    use octopi::enumerate_factorizations;
    use tcr::mapping::map_kernel;
    use tcr::space::{LoopSel, ProgramSpace};
    use tensor::index::uniform_dims;
    use tensor::IndexVar;

    fn matmul_program(n: usize) -> tcr::TcrProgram {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        tcr::TcrProgram::from_factorization("mm", &c, &fs[0], &dims)
    }

    /// Builds a 1-D-block mapping with `tx` over the given variable.
    fn kernel_with_tx(p: &tcr::TcrProgram, tx: &str) -> tcr::MappedKernel {
        let other = if tx == "k" { "i" } else { "k" };
        let cfg = tcr::space::OpConfig {
            tx: IndexVar::new(tx),
            ty: LoopSel::One,
            bx: LoopSel::Var(IndexVar::new(other)),
            by: LoopSel::One,
            interior: vec![IndexVar::new("j")],
            unroll: 1,
            staged: vec![],
        };
        map_kernel(p, 0, &cfg, false).unwrap()
    }

    #[test]
    fn unit_stride_warp_is_coalesced() {
        // 64x64 matmul, tx = k: C[i,k] and B[j,k] have unit stride in k.
        let p = matmul_program(64);
        let k = kernel_with_tx(&p, "k");
        let arch = gtx980();
        let b = &k.inputs[1];
        let t = transactions_per_warp(&k, b, &arch);
        // 32 consecutive doubles = 256 bytes = 2 transactions of 128B.
        assert!((t - 2.0).abs() < 0.51, "coalesced access: {t}");
    }

    #[test]
    fn strided_warp_is_uncoalesced() {
        // tx = i: A[i,j] and C[i,k] stride by 64 elements per lane.
        let p = matmul_program(64);
        let k = kernel_with_tx(&p, "i");
        let arch = gtx980();
        let a = &k.inputs[0];
        let t = transactions_per_warp(&k, a, &arch);
        assert!(t > 16.0, "strided access should blow up transactions: {t}");
    }

    #[test]
    fn invariant_reference_costs_one_transaction() {
        // B[j,k] with tx = i: address is invariant across the warp lanes
        // except via nothing -> a single broadcast transaction.
        let p = matmul_program(64);
        let k = kernel_with_tx(&p, "i");
        let arch = gtx980();
        let b = &k.inputs[1];
        let t = transactions_per_warp(&k, b, &arch);
        assert!((t - 1.0).abs() < 1e-9, "broadcast: {t}");
    }

    #[test]
    fn traffic_prefers_coalesced_mapping() {
        let p = matmul_program(64);
        let arch = gtx980();
        let good = kernel_traffic(&kernel_with_tx(&p, "k"), &arch);
        let bad = kernel_traffic(&kernel_with_tx(&p, "i"), &arch);
        // The margin is modest because the strided mapping's line reuse
        // across interior iterations (temporal_factor) recovers some of the
        // wasted bandwidth — as it does on real hardware.
        assert!(
            good.l2_bytes < bad.l2_bytes / 1.3,
            "coalesced {} vs strided {}",
            good.l2_bytes,
            bad.l2_bytes
        );
        assert!(good.worst_txn_per_warp <= 2.5);
        assert!(bad.worst_txn_per_warp >= 16.0);
    }

    #[test]
    fn footprint_counts_each_array_once() {
        let p = matmul_program(16);
        let arch = gtx980();
        let t = kernel_traffic(&kernel_with_tx(&p, "k"), &arch);
        // A, B, C: 3 arrays x 256 elements x 8 bytes.
        assert!((t.footprint_bytes - 3.0 * 256.0 * 8.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_from_program_space_config() {
        // Smoke: any generated config yields positive traffic numbers.
        let p = matmul_program(16);
        let space = ProgramSpace::build(&p);
        let arch = gtx980();
        for cfg in space.per_op[0].configs.iter().take(8) {
            let k = map_kernel(&p, 0, cfg, false).unwrap();
            let t = kernel_traffic(&k, &arch);
            assert!(t.l2_transactions > 0.0);
            assert!(t.l2_bytes >= t.l2_transactions * 32.0);
        }
    }
}
