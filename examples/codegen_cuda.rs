//! Code-generation walkthrough: every artifact of Figure 2.
//!
//! ```text
//! cargo run --release --example codegen_cuda
//! ```
//!
//! Shows the full lowering chain for the paper's Eqn. (1): DSL input →
//! OCTOPI versions → TCR listing → sequential C → Orio/CHiLL annotation →
//! optimized CUDA, and writes the CUDA source to `target/eqn1.cu`.

use barracuda::prelude::*;
use barracuda::variant::StatementTuner;
use octopi::cost::strength_reduction_gain;
use tcr::codegen::{orio_annotations, sequential_c};

fn main() {
    let w = kernels::eqn1(kernels::EQN1_N);
    println!("== Figure 2(a): OCTOPI input ==\n{}\n", w.statements[0]);

    // OCTOPI: all versions with costs.
    let tuner = StatementTuner::build("ex", &w.statements[0], &w.dims);
    println!("== OCTOPI versions (strength reduction) ==");
    for (i, v) in tuner.variants.iter().enumerate() {
        println!(
            "  version {i:2}: {:9} flops  (gain {:6.1}x)  {} statements",
            v.factorization.flops,
            strength_reduction_gain(&w.statements[0], &w.dims, &v.factorization),
            v.factorization.steps.len()
        );
    }
    println!();

    // TCR listing of the best version (Figure 2(b)).
    let best = &tuner.variants[0];
    println!("== Figure 2(b): TCR input ==\n{}", best.program.listing());

    // The sequential loop nest CUDA-CHiLL starts from.
    println!("== sequential C (last statement) ==");
    println!(
        "{}",
        sequential_c(&best.program, best.program.ops.last().unwrap())
    );

    // Search-space annotation (Figure 2(c)).
    println!("== Figure 2(c): Orio/CHiLL annotation ==");
    println!("{}", orio_annotations(&best.space));

    // Autotune and emit CUDA (Figure 2(d)).
    let full = WorkloadTuner::build(&w);
    let tuned = full
        .autotune(&gpusim::gtx980(), TuneParams::paper())
        .unwrap();
    let cuda = tuned.cuda_source();
    println!("== Figure 2(d): optimized CUDA ==\n{cuda}");

    let out = std::path::Path::new("target").join("eqn1.cu");
    if std::fs::write(&out, &cuda).is_ok() {
        println!("(wrote {} bytes to {})", cuda.len(), out.display());
    }

    // Complete translation unit (kernels + host main + CPU validation),
    // ready for nvcc.
    let cufile = tcr::codegen::cuda_file(&tuned.programs[0], &tuned.kernels[0]);
    let out = std::path::Path::new("target").join("eqn1_full.cu");
    if std::fs::write(&out, &cufile).is_ok() {
        println!("(wrote complete .cu with host main to {})", out.display());
    }

    // Fused alternative (one kernel instead of three).
    if let Some(alt) = barracuda::fusionopt::fuse_alternatives(&tuned, &gpusim::gtx980())
        .into_iter()
        .flatten()
        .next()
    {
        println!(
            "\n== fused alternative ({:.2}x faster) ==\n{}",
            alt.speedup(),
            tcr::codegen::cuda_fused(&alt.kernel, &tuned.programs[0])
        );
    }
}
