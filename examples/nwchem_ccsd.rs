//! Coupled-cluster scenario: tuning the NWChem CCSD(T) kernel families.
//!
//! ```text
//! cargo run --release --example nwchem_ccsd
//! ```
//!
//! Tunes the nine `d1` kernels (rank-6 `triplesx` updates contracting over
//! an extra hole index) on the simulated Tesla K20, compares against the
//! naive-OpenACC mapping, and validates one tuned kernel functionally at a
//! reduced tile size.

use barracuda::kernels::{nwchem_d1, nwchem_family, NWCHEM_TRIP};
use barracuda::openacc::openacc_naive;
use barracuda::prelude::*;

fn main() {
    let arch = gpusim::k20();
    let params = TuneParams::paper();

    println!(
        "tuning the NWChem CCSD(T) d1 family (trip count {NWCHEM_TRIP}) on {}:\n",
        arch.name
    );
    println!(
        "{:<6} {:>12} {:>14} {:>12} {:>8}",
        "kernel", "naive (ms)", "tuned (ms)", "speedup", "GFlops"
    );
    for w in nwchem_family("d1", NWCHEM_TRIP) {
        let tuned = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
        let naive = openacc_naive(&w).gpu_seconds(&arch);
        println!(
            "{:<6} {:>12.3} {:>14.3} {:>11.1}x {:>8.1}",
            w.name,
            naive * 1e3,
            tuned.gpu_seconds * 1e3,
            naive / tuned.gpu_seconds,
            tuned.gflops_device()
        );
    }

    // Functional validation at a reduced tile size (full execution of the
    // simulated grid: 8^6 output elements).
    println!("\nvalidating d1_1 functionally at trip count 8 ...");
    let w = nwchem_d1(1, 8);
    let tuned = WorkloadTuner::build(&w)
        .autotune(&arch, TuneParams::quick())
        .unwrap();
    let inputs = w.random_inputs(9);
    let expect = w.evaluate_reference(&inputs).unwrap();
    let got = tuned.execute(&w, &inputs).unwrap();
    assert!(
        expect[0].1.approx_eq(&got[0].1, 1e-10),
        "tuned kernel diverges"
    );
    println!("ok: tuned kernel matches the reference evaluator");

    // Show what the tuner chose for d1_1 at full size.
    let w = nwchem_d1(1, NWCHEM_TRIP);
    let tuned = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
    let k = &tuned.kernels[0][0];
    println!(
        "\nd1_1 chosen mapping: block {:?}, grid {:?}, interior {:?}, unroll {}",
        k.block(),
        k.grid(),
        k.interior.iter().map(|l| l.var.name()).collect::<Vec<_>>(),
        k.unroll
    );
}
