//! Spectral-element scenario: the Nekbone proxy application.
//!
//! ```text
//! cargo run --release --example spectral_element
//! ```
//!
//! Runs a real conjugate-gradient solve whose operator is built from the
//! `local_grad3` / `local_grad3t` tensor contractions (executed through the
//! same TCR programs the autotuner optimizes), then models the GPU
//! performance of the contraction core under the paper's three strategies
//! (naive OpenACC, optimized OpenACC, Barracuda) on the Tesla K20.

use barracuda::nekbone::{
    model_cpu_gflops, model_gpu_perf, run_cg, NekboneConfig, NekboneOperator,
};
use barracuda::pipeline::TuneParams;

fn main() {
    // A real CG solve at a laptop-friendly size.
    let cfg = NekboneConfig {
        order: 8,
        elements: 32,
        cg_iters: 200,
        tol: 1e-8,
    };
    let op = NekboneOperator::new(cfg, 5);
    println!(
        "solving the spectral-element Poisson system: {} elements of {}^3 ({} unknowns)",
        cfg.elements,
        cfg.order,
        op.n()
    );
    let stats = run_cg(&op, 4);
    println!(
        "CG {} in {} iterations; final relative residual {:.2e}",
        if stats.converged {
            "converged"
        } else {
            "stopped"
        },
        stats.iterations,
        stats.residuals.last().unwrap()
    );
    println!(
        "contraction flops: {:.1} M ({}% of total work)\n",
        stats.contraction_flops as f64 / 1e6,
        (100 * stats.contraction_flops / (stats.contraction_flops + stats.vector_flops))
    );

    // Modeled GPU performance of the contraction core at the paper's size.
    let paper_cfg = NekboneConfig::default();
    println!(
        "modeling the contraction core at the paper's size ({} elements of {}^3)...",
        paper_cfg.elements, paper_cfg.order
    );
    let arch = gpusim::k20();
    let perf = model_gpu_perf(paper_cfg, &arch, TuneParams::paper()).unwrap();
    println!("on the simulated {}:", arch.name);
    println!(
        "  OpenACC naive     : {:>7.2} GFlops",
        perf.acc_naive_gflops
    );
    println!("  OpenACC optimized : {:>7.2} GFlops", perf.acc_opt_gflops);
    println!(
        "  Barracuda         : {:>7.2} GFlops",
        perf.barracuda_gflops
    );
    println!(
        "  (CPU baselines    : {:>7.2} GF 1 core, {:.2} GF OpenMP-4)",
        model_cpu_gflops(paper_cfg, 1),
        model_cpu_gflops(paper_cfg, 4)
    );
    println!(
        "\nchosen decomposition for lg3 statement 0: {:?} threads, {:?} blocks",
        perf.tuned_lg3.kernels[0][0].block(),
        perf.tuned_lg3.kernels[0][0].grid()
    );
}
