//! Quickstart: autotune one tensor contraction end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Parses a contraction in the paper's DSL, enumerates its OCTOPI versions,
//! builds the GPU search space, runs SURF against the simulated GTX 980,
//! validates the tuned kernels against the reference evaluator, and prints
//! the generated CUDA alongside the performance estimate.

use barracuda::prelude::*;
use tensor::index::uniform_dims;

fn main() {
    // The paper's Eqn. (1): a 2-D spectral-element contraction with three
    // summation indices, all extents 10.
    let src = "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])";
    let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
    let workload = Workload::parse("ex", src, &dims).expect("valid DSL");

    println!("input statement:\n  {}\n", workload.statements[0]);

    // OCTOPI + TCR: versions and their search spaces.
    let tuner = WorkloadTuner::build(&workload);
    println!(
        "OCTOPI produced {} versions; joint search space = {} configurations",
        tuner.statements[0].variants.len(),
        tuner.total_space()
    );

    // SURF autotuning against the simulated GTX 980.
    let arch = gpusim::gtx980();
    let tuned = tuner.autotune(&arch, TuneParams::paper()).unwrap();
    println!(
        "tuned on {}: {:.2} us/kernel-set, {:.2} GFlops (device), {} evaluations\n",
        arch.name,
        tuned.gpu_seconds * 1e6,
        tuned.gflops_device(),
        tuned.search.n_evals
    );

    // Correctness: the tuned kernels must reproduce the oracle bit-for-bit
    // up to floating-point associativity.
    let inputs = workload.random_inputs(42);
    let expect = workload.evaluate_reference(&inputs).unwrap();
    let got = tuned.execute(&workload, &inputs).unwrap();
    assert!(
        expect[0].1.approx_eq(&got[0].1, 1e-10),
        "tuned kernels diverge from the reference"
    );
    println!("validation: tuned kernels match the reference evaluator\n");

    println!("generated CUDA:\n{}", tuned.cuda_source());
}
