//! Workspace root package: hosts the runnable examples (`examples/`) and
//! the cross-crate integration tests (`tests/`). The library surface is in
//! the [`barracuda`] crate; this crate just re-exports it for convenience.

pub use barracuda::*;
